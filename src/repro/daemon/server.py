"""The asyncio aggregation daemon: many tenants, one control plane.

:class:`AggregationDaemon` hosts any number of :class:`~repro.daemon.
tenant.Tenant` router stacks and exposes two listening sockets:

- a **control socket** speaking the line-delimited JSON protocol of
  :mod:`repro.daemon.protocol` — one request per line, responses in
  order, errors as ``{"ok": false, "error": ...}`` frames that never
  drop the connection;
- a **Prometheus scrape endpoint** — minimal HTTP serving the 0.0.4
  text exposition of the daemon registry at ``/metrics`` and of each
  tenant's registry at ``/metrics/<tenant>`` via the pinned
  :func:`~repro.obs.export.render_prometheus` renderer.

Fleet verification (``verify``) runs the VeriTable-style joint walk
(:func:`~repro.core.equivalence.joint_divergences`): tenants of equal
width share ONE union-trie traversal that checks every tenant's
OT ≡ FIB ≡ kernel agreement, instead of N pairwise diffs.

All of this runs on the event loop: nothing here may block (REPRO013
gates the package), file IO stays in the synchronous entry points, and
time is read only through the injected clock.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Awaitable, Callable, Optional

from repro.core.downloads import diff_tables
from repro.core.equivalence import joint_divergences
from repro.daemon import protocol
from repro.daemon.tenant import Clock, Tenant, TenantConfig
from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix
from repro.obs.export import render_prometheus
from repro.obs.observability import Observability

#: Tables ``routes-dump`` can serve, mapped to their accessors.
DUMP_TABLES = ("fib", "ot", "at", "kernel")


class DaemonError(Exception):
    """A command-level failure, reported in-band as an error frame."""


Handler = Callable[[dict[str, Any]], Awaitable[Any]]


class AggregationDaemon:
    """The resident server: tenants, control socket, scrape endpoint."""

    def __init__(self, clock: Clock = time.perf_counter) -> None:
        self._clock = clock
        self.obs = Observability(clock=clock)
        self.tenants: dict[str, Tenant] = {}
        self._control: Optional[asyncio.AbstractServer] = None
        self._metrics: Optional[asyncio.AbstractServer] = None
        #: Claimed synchronously by ``start()`` before its first await so
        #: two concurrent ``start()`` calls cannot both pass the check.
        self._active = False
        #: Open control connections, closed explicitly by ``stop()`` so
        #: loop teardown never cancels a handler mid-read.
        self._connections: set[asyncio.StreamWriter] = set()
        self._started_at: Optional[float] = None
        #: Set by the ``shutdown`` command; ``serve_until_shutdown``
        #: (and ``__main__``) waits on it.
        self.shutdown_requested = asyncio.Event()
        registry = self.obs.registry
        self._g_tenants = registry.gauge(
            "daemon_tenants", "tenants currently hosted"
        )
        self._c_commands = registry.counter(
            "daemon_commands_total", "control commands executed"
        )
        self._c_connections = registry.counter(
            "daemon_control_connections_total", "control connections accepted"
        )
        self._c_proto_errors = registry.counter(
            "daemon_protocol_errors_total", "malformed or failing control frames"
        )
        self._c_scrapes = registry.counter(
            "daemon_scrapes_total", "Prometheus scrapes served"
        )
        self._handlers: dict[str, Handler] = {
            "ping": self._cmd_ping,
            "status": self._cmd_status,
            "tenant-add": self._cmd_tenant_add,
            "tenant-remove": self._cmd_tenant_remove,
            "tenant-list": self._cmd_tenant_list,
            "feed": self._cmd_feed,
            "drain": self._cmd_drain,
            "end-of-rib": self._cmd_end_of_rib,
            "routes-dump": self._cmd_routes_dump,
            "diff-kernel": self._cmd_diff_kernel,
            "channel-status": self._cmd_channel_status,
            "snapshot": self._cmd_snapshot,
            "resync": self._cmd_resync,
            "summary": self._cmd_summary,
            "verify": self._cmd_verify,
            "shutdown": self._cmd_shutdown,
        }

    # -- tenant management ----------------------------------------------

    def add_tenant(self, config: TenantConfig, start: bool = True) -> Tenant:
        """Create (and, inside the loop, start) one hosted router."""
        if config.name in self.tenants:
            raise DaemonError(f"tenant {config.name!r} already exists")
        tenant = Tenant(config, clock=self._clock)
        self.tenants[config.name] = tenant
        if start:
            tenant.start()
        self._g_tenants.set(float(len(self.tenants)))
        return tenant

    async def remove_tenant(self, name: str) -> None:
        tenant = self._tenant(name)
        await tenant.stop()
        tenant.close()
        del self.tenants[name]
        self._g_tenants.set(float(len(self.tenants)))

    def _tenant(self, name: object) -> Tenant:
        if not isinstance(name, str):
            raise DaemonError(f"tenant name must be a string: {name!r}")
        tenant = self.tenants.get(name)
        if tenant is None:
            raise DaemonError(f"no such tenant: {name!r}")
        return tenant

    # -- server lifecycle ------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", control_port: int = 0, metrics_port: int = 0
    ) -> None:
        """Bind both sockets and start every not-yet-started tenant."""
        if self._active:
            raise RuntimeError("daemon already started")
        self._active = True
        control: Optional[asyncio.AbstractServer] = None
        try:
            for tenant in self.tenants.values():
                if not tenant.running:
                    tenant.start()
            control = await asyncio.start_server(
                self._handle_control, host, control_port
            )
            metrics = await asyncio.start_server(
                self._handle_scrape, host, metrics_port
            )
        except BaseException:
            if control is not None:
                control.close()
                await control.wait_closed()
            self._active = False
            raise
        self._control = control
        self._metrics = metrics
        self._started_at = self._clock()

    def _bound_port(self, server: Optional[asyncio.AbstractServer]) -> int:
        if server is None or len(server.sockets) == 0:
            raise RuntimeError("daemon not started")
        port = server.sockets[0].getsockname()[1]
        assert isinstance(port, int)
        return port

    @property
    def control_port(self) -> int:
        return self._bound_port(self._control)

    @property
    def metrics_port(self) -> int:
        return self._bound_port(self._metrics)

    async def stop(self) -> None:
        """Stop tenants (draining their queues), then close both sockets."""
        for name in list(self.tenants):
            tenant = self.tenants[name]
            if tenant.running:
                await tenant.stop()
            tenant.close()
            del self.tenants[name]
        self._g_tenants.set(0.0)
        for writer in list(self._connections):
            writer.close()
        for server in (self._control, self._metrics):
            if server is not None:
                server.close()
                await server.wait_closed()
        # Let the connection handlers observe EOF and finish this turn.
        await asyncio.sleep(0)
        self._control = None
        self._metrics = None
        self._active = False

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` command arrives, then stop."""
        await self.shutdown_requested.wait()
        await self.stop()

    # -- the control socket ----------------------------------------------

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._c_connections.inc()
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if len(line) == 0:
                    break
                if line.strip() == b"":
                    continue
                writer.write(await self._respond(line))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _respond(self, line: bytes) -> bytes:
        """One request frame in, one response frame out; never raises."""
        request_id: Optional[int] = None
        try:
            frame = protocol.decode_line(line)
            raw_id = frame.get("id")
            if isinstance(raw_id, int):
                request_id = raw_id
            cmd = frame.get("cmd")
            if not isinstance(cmd, str):
                raise protocol.ProtocolError("frame lacks a string 'cmd'")
            handler = self._handlers.get(cmd)
            if handler is None:
                raise DaemonError(f"unknown command: {cmd!r}")
            args = frame.get("args", {})
            if not isinstance(args, dict):
                raise protocol.ProtocolError("'args' must be an object")
            result = await handler(args)
            self._c_commands.inc()
            return protocol.ok_response(request_id, result)
        except (DaemonError, protocol.ProtocolError) as exc:
            self._c_proto_errors.inc()
            return protocol.error_response(request_id, str(exc))
        except Exception as exc:
            # A handler bug must not sever the operator's connection:
            # surface it in-band and keep serving.
            self._c_proto_errors.inc()
            return protocol.error_response(
                request_id, f"internal error: {type(exc).__name__}: {exc}"
            )

    # -- command handlers ------------------------------------------------

    async def _cmd_ping(self, args: dict[str, Any]) -> dict[str, Any]:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "tenants": len(self.tenants),
        }

    async def _cmd_status(self, args: dict[str, Any]) -> dict[str, Any]:
        uptime = 0.0
        if self._started_at is not None:
            uptime = self._clock() - self._started_at
        return {
            "uptime_s": uptime,
            "tenants": {
                name: {
                    "running": tenant.running,
                    "width": tenant.config.width,
                    "backend": tenant.pipeline.zebra.manager.backend_name,
                    "queue_depth": tenant.queue_depth,
                    "summary": tenant.summary(),
                }
                for name, tenant in sorted(self.tenants.items())
            },
        }

    async def _cmd_tenant_add(self, args: dict[str, Any]) -> dict[str, Any]:
        name = args.get("name")
        if not isinstance(name, str):
            raise DaemonError("tenant-add requires a string 'name'")
        width = args.get("width", 32)
        if not isinstance(width, int):
            raise DaemonError("'width' must be an integer")
        backend = args.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise DaemonError("'backend' must be a backend name string")
        enabled = args.get("smalta_enabled", True)
        if not isinstance(enabled, bool):
            raise DaemonError("'smalta_enabled' must be a boolean")
        keep_entries = args.get("keep_entries", False)
        if not isinstance(keep_entries, bool):
            raise DaemonError("'keep_entries' must be a boolean")
        try:
            config = TenantConfig(
                name=name,
                width=width,
                smalta_enabled=enabled,
                backend=backend,
                keep_entries=keep_entries,
            )
            self.add_tenant(config)
        except ValueError as exc:
            raise DaemonError(str(exc)) from exc
        return {"added": name}

    async def _cmd_tenant_remove(self, args: dict[str, Any]) -> dict[str, Any]:
        name = args.get("name")
        await self.remove_tenant(name if isinstance(name, str) else "")
        return {"removed": name}

    async def _cmd_tenant_list(self, args: dict[str, Any]) -> list[dict[str, Any]]:
        return [
            {
                "name": name,
                "width": tenant.config.width,
                "backend": tenant.pipeline.zebra.manager.backend_name,
                "running": tenant.running,
            }
            for name, tenant in sorted(self.tenants.items())
        ]

    async def _cmd_feed(self, args: dict[str, Any]) -> dict[str, Any]:
        """Enqueue updates carried in the request (a control-plane feed)."""
        tenant = self._tenant(args.get("tenant"))
        raw_updates = args.get("updates")
        if not isinstance(raw_updates, list):
            raise DaemonError("feed requires an 'updates' list")
        updates = [protocol.decode_update(raw) for raw in raw_updates]
        as_burst = args.get("burst", False)
        if not isinstance(as_burst, bool):
            raise DaemonError("'burst' must be a boolean")
        if as_burst and len(updates) > 0:
            await tenant.feed_burst(updates)
        else:
            for update in updates:
                await tenant.feed_update(update)
        if args.get("end_of_rib", False) is True:
            await tenant.end_of_rib()
        return {"fed": len(updates)}

    async def _cmd_drain(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        await tenant.drain()
        return {"drained": True, "queue_depth": tenant.queue_depth}

    async def _cmd_end_of_rib(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        await tenant.end_of_rib()
        await tenant.drain()
        return {"end_of_rib": True}

    def _table_of(self, tenant: Tenant, which: object) -> dict[Prefix, Nexthop]:
        manager = tenant.pipeline.zebra.manager
        if which == "fib":
            return manager.fib_table()
        if which == "ot":
            return manager.state.ot_table()
        if which == "at":
            return manager.state.at_table()
        if which == "kernel":
            return tenant.pipeline.zebra.kernel.table()
        raise DaemonError(
            f"unknown table {which!r}; expected one of {', '.join(DUMP_TABLES)}"
        )

    async def _cmd_routes_dump(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        which = args.get("table", "fib")
        table = self._table_of(tenant, which)
        return {
            "tenant": tenant.name,
            "table": which,
            "width": tenant.config.width,
            "routes": protocol.encode_table(table),
        }

    async def _cmd_diff_kernel(self, args: dict[str, Any]) -> dict[str, Any]:
        """What a full sync would download: kernel-table → FIB delta."""
        tenant = self._tenant(args.get("tenant"))
        zebra = tenant.pipeline.zebra
        delta = diff_tables(zebra.kernel.table(), zebra.manager.fib_table())
        return {
            "tenant": tenant.name,
            "in_sync": len(delta) == 0,
            "ops": [protocol.encode_download(download) for download in delta],
        }

    async def _cmd_channel_status(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        channel = tenant.pipeline.zebra.channel
        status: dict[str, Any] = dict(channel.status())
        status["state"] = channel.state.value
        return status

    async def _cmd_snapshot(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        await tenant.drain()
        downloads = tenant.pipeline.zebra.snapshot_now()
        return {"tenant": tenant.name, "burst": len(downloads)}

    async def _cmd_resync(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        channel = tenant.pipeline.zebra.channel
        before = channel.resyncs
        channel.resync("manual")
        return {"tenant": tenant.name, "resyncs": channel.resyncs - before}

    async def _cmd_summary(self, args: dict[str, Any]) -> dict[str, Any]:
        tenant = self._tenant(args.get("tenant"))
        return {"tenant": tenant.name, "summary": tenant.summary()}

    async def _cmd_verify(self, args: dict[str, Any]) -> dict[str, Any]:
        """Fleet-wide OT ≡ FIB ≡ kernel: ONE joint walk per prefix width.

        Tenants of equal width contribute their three tables to a single
        VeriTable-style traversal whose agreement groups are the
        per-tenant triples — N tenants cost one walk, not N diffs.
        """
        names = args.get("tenants")
        if names is None:
            selected = sorted(self.tenants)
        elif isinstance(names, list) and all(isinstance(n, str) for n in names):
            selected = [self._tenant(n).name for n in names]
        else:
            raise DaemonError("'tenants' must be a list of tenant names")
        for name in selected:
            await self.tenants[name].drain()
        by_width: dict[int, list[str]] = {}
        for name in selected:
            by_width.setdefault(self.tenants[name].config.width, []).append(name)
        report: dict[str, Any] = {}
        walks = 0
        for width, group_names in sorted(by_width.items()):
            tables: list[dict[Prefix, Nexthop]] = []
            groups: list[tuple[int, int, int]] = []
            for name in group_names:
                tenant = self.tenants[name]
                base = len(tables)
                manager = tenant.pipeline.zebra.manager
                tables.append(manager.state.ot_table())
                tables.append(manager.fib_table())
                tables.append(tenant.pipeline.zebra.kernel.table())
                groups.append((base, base + 1, base + 2))
            divergences = joint_divergences(tables, width, groups)
            walks += 1
            diverged = {div.group[0] // 3 for div in divergences}
            for index, name in enumerate(group_names):
                count = sum(1 for d in divergences if d.group[0] // 3 == index)
                report[name] = {
                    "ok": index not in diverged,
                    "divergences": count,
                }
        return {
            "ok": all(entry["ok"] for entry in report.values()),
            "walks": walks,
            "tenants": report,
        }

    async def _cmd_shutdown(self, args: dict[str, Any]) -> dict[str, Any]:
        self.shutdown_requested.set()
        return {"stopping": True}

    # -- the Prometheus scrape endpoint ----------------------------------

    def _registry_for(self, path: str) -> Optional[str]:
        """Render the exposition for ``path``, or None for a 404."""
        if path in ("/metrics", "/metrics/"):
            return render_prometheus(self.obs.registry)
        if path.startswith("/metrics/"):
            tenant = self.tenants.get(path[len("/metrics/"):])
            if tenant is not None:
                return render_prometheus(tenant.obs.registry)
        return None

    async def _handle_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal HTTP/1.0: one request, one response, connection close."""
        try:
            request_line = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            body = self._registry_for(path.split("?", 1)[0])
            if body is None:
                payload = b"not found\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain; charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            else:
                payload = body.encode("utf-8")
                self._c_scrapes.inc()
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
