"""Wire protocol of the control socket: line-delimited JSON.

One request per line, one response per line, strictly ordered per
connection:

    {"id": 1, "cmd": "routes-dump", "args": {"tenant": "r1", "table": "fib"}}
    {"id": 1, "ok": true, "result": {...}}

Prefixes cross the wire as lossless ``[value, length, width]`` triples
(display strings are a *client-side* rendering concern — width-6 test
tables and width-128 IPv6 round-trip unchanged). Nexthops are
``[key, name]`` pairs; DROP is the reserved key ``-1``.

Everything here is pure and synchronous: the codec is shared by the
server, the ctl client, and the test suite, and none of it may touch
sockets, clocks, or files.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.core.downloads import DownloadKind, FibDownload
from repro.net.nexthop import DROP, Nexthop
from repro.net.prefix import Prefix
from repro.net.update import RouteUpdate, UpdateKind

#: Bumped on any incompatible change to the framing or the codecs.
PROTOCOL_VERSION = 1

#: Hard cap on one request/response line; longer frames are refused
#: before JSON parsing (control traffic is small — bulk data flows
#: through ``routes-dump`` style responses the *server* composes).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame or an out-of-contract field."""


# -- value codecs --------------------------------------------------------


def encode_prefix(prefix: Prefix) -> list[int]:
    return [prefix.value, prefix.length, prefix.width]


def decode_prefix(raw: object) -> Prefix:
    if (
        not isinstance(raw, list)
        or len(raw) != 3
        or not all(isinstance(part, int) for part in raw)
    ):
        raise ProtocolError(f"prefix must be a [value, length, width] triple: {raw!r}")
    try:
        return Prefix(raw[0], raw[1], raw[2])
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def encode_nexthop(nexthop: Nexthop) -> list[object]:
    return [nexthop.key, nexthop.name]


def decode_nexthop(raw: object) -> Nexthop:
    if (
        not isinstance(raw, list)
        or len(raw) != 2
        or not isinstance(raw[0], int)
        or not isinstance(raw[1], str)
    ):
        raise ProtocolError(f"nexthop must be a [key, name] pair: {raw!r}")
    if raw[0] == DROP.key:
        return DROP
    return Nexthop(raw[0], raw[1])


def encode_update(update: RouteUpdate) -> dict[str, object]:
    body: dict[str, object] = {
        "kind": update.kind.value,
        "prefix": encode_prefix(update.prefix),
        "ts": update.timestamp,
    }
    if update.nexthop is not None:
        body["nexthop"] = encode_nexthop(update.nexthop)
    return body


def decode_update(raw: object) -> RouteUpdate:
    if not isinstance(raw, Mapping):
        raise ProtocolError(f"update must be an object: {raw!r}")
    kind = raw.get("kind")
    prefix = decode_prefix(raw.get("prefix"))
    timestamp = raw.get("ts", 0.0)
    if not isinstance(timestamp, (int, float)):
        raise ProtocolError(f"update ts must be a number: {timestamp!r}")
    if kind == UpdateKind.ANNOUNCE.value:
        return RouteUpdate.announce(
            prefix, decode_nexthop(raw.get("nexthop")), float(timestamp)
        )
    if kind == UpdateKind.WITHDRAW.value:
        return RouteUpdate.withdraw(prefix, float(timestamp))
    raise ProtocolError(f"unknown update kind: {kind!r}")


def encode_download(download: FibDownload) -> dict[str, object]:
    body: dict[str, object] = {
        "op": download.kind.value,
        "prefix": encode_prefix(download.prefix),
    }
    if download.nexthop is not None:
        body["nexthop"] = encode_nexthop(download.nexthop)
    return body


def decode_download(raw: object) -> FibDownload:
    if not isinstance(raw, Mapping):
        raise ProtocolError(f"download must be an object: {raw!r}")
    op = raw.get("op")
    prefix = decode_prefix(raw.get("prefix"))
    if op == DownloadKind.INSERT.value:
        return FibDownload.insert(prefix, decode_nexthop(raw.get("nexthop")))
    if op == DownloadKind.DELETE.value:
        return FibDownload.delete(prefix)
    raise ProtocolError(f"unknown download op: {op!r}")


def encode_table(table: Mapping[Prefix, Nexthop]) -> list[list[object]]:
    """A routes-dump body: ``[[prefix-triple, nexthop-pair], ...]`` sorted
    by prefix so two dumps of equal tables compare equal as JSON."""
    return [
        [encode_prefix(prefix), encode_nexthop(table[prefix])]
        for prefix in sorted(table)
    ]


def decode_table(raw: object) -> dict[Prefix, Nexthop]:
    if not isinstance(raw, list):
        raise ProtocolError(f"table must be a list of rows: {raw!r}")
    table: dict[Prefix, Nexthop] = {}
    for row in raw:
        if not isinstance(row, list) or len(row) != 2:
            raise ProtocolError(f"table row must be [prefix, nexthop]: {row!r}")
        table[decode_prefix(row[0])] = decode_nexthop(row[1])
    return table


# -- framing -------------------------------------------------------------


def encode_line(payload: Mapping[str, Any]) -> bytes:
    """One frame: compact JSON, newline-terminated, UTF-8."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


def request_line(request_id: int, cmd: str, args: Mapping[str, Any]) -> bytes:
    return encode_line({"id": request_id, "cmd": cmd, "args": dict(args)})


def ok_response(request_id: Optional[int], result: Any) -> bytes:
    return encode_line({"id": request_id, "ok": True, "result": result})


def error_response(request_id: Optional[int], message: str) -> bytes:
    return encode_line({"id": request_id, "ok": False, "error": message})
