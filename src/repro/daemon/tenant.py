"""One hosted router: a full pipeline behind an asyncio feed queue.

A :class:`Tenant` wraps a complete :class:`~repro.router.pipeline.
RouterPipeline` (its own Observability registry, SMALTA manager, zebra,
download channel, kernel) and puts an ``asyncio.Queue`` in front of it.
Feeding awaits ``queue.put`` — a slow tenant therefore exerts
*backpressure* on its producer instead of buffering without bound — and
one consumer task drains the queue, yielding to the event loop between
items so control-socket and scrape traffic stay live mid-replay.

The consumer calls the pipeline's public ``apply_update`` /
``apply_burst`` / ``end_of_rib`` — literally the code path
``RouterPipeline.run_trace`` uses — which is what makes the daemon's
download logs byte-identical to a batch run of the same feed
(``tests/daemon/test_daemon_differential.py``).
"""

from __future__ import annotations

import asyncio
import enum
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.downloads import DownloadLog
from repro.core.policy import SnapshotPolicy
from repro.faults.plan import FaultPlan
from repro.net.update import RouteUpdate
from repro.obs.observability import Observability
from repro.router.channel import ChannelConfig
from repro.router.pipeline import RouterPipeline

if TYPE_CHECKING:
    from repro.core.trie import FibTrie

Clock = Callable[[], float]

#: Default feed-queue bound: a producer more than this many items ahead
#: of the consumer blocks in ``await feed(...)``.
DEFAULT_QUEUE_LIMIT = 64


class FeedKind(enum.Enum):
    UPDATE = "update"
    BURST = "burst"
    END_OF_RIB = "end_of_rib"
    STOP = "stop"


@dataclass(frozen=True)
class FeedItem:
    kind: FeedKind
    update: Optional[RouteUpdate] = None
    burst: Optional[list[RouteUpdate]] = None


@dataclass
class TenantConfig:
    """Everything needed to stand up one hosted router."""

    name: str
    width: int = 32
    smalta_enabled: bool = True
    policy: Optional[SnapshotPolicy] = None
    backend: "str | FibTrie | None" = None
    #: Keep per-entry download records (the equivalence harnesses diff
    #: them byte for byte); accounting-only tenants leave this off.
    keep_entries: bool = False
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    faults: Optional[FaultPlan] = None
    channel_config: Optional[ChannelConfig] = None

    def __post_init__(self) -> None:
        if len(self.name) == 0 or any(c.isspace() for c in self.name):
            raise ValueError(f"tenant name must be non-empty, no spaces: {self.name!r}")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")


@dataclass
class TenantStats:
    """Daemon-side accounting, separate from the pipeline's own stats."""

    feed_items: int = 0
    feed_updates: int = 0
    feed_bursts: int = 0
    consumer_errors: list[str] = field(default_factory=list)


class Tenant:
    """A hosted router: queue in front, full pipeline behind."""

    def __init__(self, config: TenantConfig, clock: Clock = time.perf_counter) -> None:
        self.config = config
        self.name = config.name
        self.obs = Observability(clock=clock)
        self.download_log = DownloadLog(keep_entries=config.keep_entries)
        self.pipeline = RouterPipeline(
            width=config.width,
            smalta_enabled=config.smalta_enabled,
            policy=config.policy,
            obs=self.obs,
            faults=config.faults,
            channel_config=config.channel_config,
            backend=config.backend,
            download_log=self.download_log,
        )
        self.stats = TenantStats()
        self._queue: asyncio.Queue[FeedItem] = asyncio.Queue(
            maxsize=config.queue_limit
        )
        self._consumer: Optional[asyncio.Task[None]] = None
        self._stopping = False
        self._g_depth = self.obs.registry.gauge(
            "tenant_feed_depth", "feed items parked in the tenant queue"
        )
        self._c_items = self.obs.registry.counter(
            "tenant_feed_items_total", "feed items consumed, by kind"
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn the consumer task (must run inside the event loop)."""
        if self._consumer is not None:
            raise RuntimeError(f"tenant {self.name!r} already started")
        self._stopping = False
        self._consumer = asyncio.get_running_loop().create_task(
            self._consume(), name=f"tenant-{self.name}"
        )

    @property
    def running(self) -> bool:
        return self._consumer is not None and not self._consumer.done()

    async def stop(self) -> None:
        """Stop accepting feed items, drain what's queued, join the task.

        Safe under concurrent callers: the consumer handle is read into
        a local before the first await, and the STOP sentinel is queued
        exactly once (``_stopping`` is checked and claimed in the same
        scheduling slice), so late callers simply join the same task.
        """
        consumer = self._consumer
        if consumer is None:
            return
        if not self._stopping:
            self._stopping = True
            await self._queue.put(FeedItem(FeedKind.STOP))
        await consumer
        self._consumer = None

    def close(self) -> None:
        """Release backend resources; the tenant must be stopped first."""
        if self.running:
            raise RuntimeError(f"tenant {self.name!r} still running; stop() first")
        self.pipeline.close()

    # -- the feed side ---------------------------------------------------

    async def feed_update(self, update: RouteUpdate) -> None:
        await self._put(FeedItem(FeedKind.UPDATE, update=update))

    async def feed_burst(self, burst: list[RouteUpdate]) -> None:
        await self._put(FeedItem(FeedKind.BURST, burst=burst))

    async def end_of_rib(self) -> None:
        await self._put(FeedItem(FeedKind.END_OF_RIB))

    async def drain(self) -> None:
        """Return once every item fed so far has been fully applied."""
        await self._queue.join()

    async def _put(self, item: FeedItem) -> None:
        if self._stopping or self._consumer is None:
            raise RuntimeError(f"tenant {self.name!r} is not accepting feed items")
        await self._queue.put(item)
        self._g_depth.set(float(self._queue.qsize()))

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- the consumer ----------------------------------------------------

    async def _consume(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                if item.kind is FeedKind.STOP:
                    return
                self._apply(item)
            except Exception as exc:
                # A poisoned item must not kill the tenant: record and
                # keep consuming (the soak asserts on this ledger).
                self.stats.consumer_errors.append(f"{type(exc).__name__}: {exc}")
            finally:
                self._queue.task_done()
                self._g_depth.set(float(self._queue.qsize()))
            # Yield between items: a long replay must not starve the
            # control socket or the scrape endpoint.
            await asyncio.sleep(0)

    def _apply(self, item: FeedItem) -> None:
        self.stats.feed_items += 1
        self._c_items.inc()
        if item.kind is FeedKind.UPDATE:
            assert item.update is not None
            self.stats.feed_updates += 1
            self.pipeline.apply_update(item.update)
        elif item.kind is FeedKind.BURST:
            assert item.burst is not None
            self.stats.feed_updates += len(item.burst)
            self.stats.feed_bursts += 1
            self.pipeline.apply_burst(item.burst)
        elif item.kind is FeedKind.END_OF_RIB:
            self.pipeline.end_of_rib()

    # -- introspection ---------------------------------------------------

    @property
    def manager_summary(self) -> dict[str, float]:
        return self.pipeline.zebra.manager.summary()

    def summary(self) -> dict[str, float]:
        """The manager's summary plus daemon-side keys (``daemon_*``).

        Parity tests filter the ``daemon_`` prefix and compare the rest
        against a batch pipeline's ``summary()`` verbatim.
        """
        combined = dict(self.manager_summary)
        combined["daemon_feed_items"] = float(self.stats.feed_items)
        combined["daemon_feed_updates"] = float(self.stats.feed_updates)
        combined["daemon_feed_bursts"] = float(self.stats.feed_bursts)
        combined["daemon_queue_depth"] = float(self.queue_depth)
        combined["daemon_consumer_errors"] = float(len(self.stats.consumer_errors))
        return combined
