"""The long-running aggregation daemon (docs/DAEMON.md).

``repro.daemon`` turns the run-a-trace-and-exit :class:`~repro.router.
pipeline.RouterPipeline` into a resident asyncio server hosting many
tenants (one full router stack each), fed by streaming update queues
with backpressure and operated through a line-delimited JSON control
socket plus a live Prometheus scrape endpoint. The daemon feed path
*is* the pipeline code path, so a daemon replay produces download logs
byte-identical to the batch pipeline — ``tests/daemon/`` holds the
proofs.
"""

from repro.daemon.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_download,
    decode_line,
    decode_prefix,
    decode_update,
    encode_download,
    encode_line,
    encode_prefix,
    encode_update,
)
from repro.daemon.server import AggregationDaemon, DaemonError
from repro.daemon.tenant import Tenant, TenantConfig

__all__ = [
    "PROTOCOL_VERSION",
    "AggregationDaemon",
    "DaemonError",
    "ProtocolError",
    "Tenant",
    "TenantConfig",
    "decode_download",
    "decode_line",
    "decode_prefix",
    "decode_update",
    "encode_download",
    "encode_line",
    "encode_prefix",
    "encode_update",
]
