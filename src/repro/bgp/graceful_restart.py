"""BGP Graceful Restart (RFC 4724) — the paper's own reference point.

Section 2 grounds two SMALTA behaviours in Graceful Restart: the
End-of-RIB marker gates the initial snapshot, and snapshot deltas are
downloaded "essentially [as] is done today in the context of Graceful
Restart". This module completes the substrate: when a GR-capable peer's
session drops, its routes are *retained and marked stale* (forwarding
continues — no FIB churn), and they are flushed only when the restart
timer expires or when the peer returns and its fresh End-of-RIB shows
which routes did not come back.

The FIB-facing consequence is exactly what SMALTA wants: a restarting
peer causes zero FIB downloads unless routes actually change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bgp.rib import LocRib, Route
from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix
from repro.net.update import RouteUpdate

#: RFC 4724's suggested default Restart Time is 120 seconds.
DEFAULT_RESTART_TIME_S = 120.0


@dataclass
class _PeerRestartState:
    restarting: bool = False
    deadline: float = 0.0
    stale: set[Prefix] = field(default_factory=set)


class GracefulRestartManager:
    """Stale-path retention over a LocRib, with restart timers.

    Drive it with a logical clock: every method takes ``now`` (seconds).
    All route changes come back as :class:`RouteUpdate` lists, ready for
    the SMALTA manager.
    """

    def __init__(
        self,
        loc_rib: Optional[LocRib] = None,
        restart_time_s: float = DEFAULT_RESTART_TIME_S,
    ) -> None:
        self.loc_rib = loc_rib if loc_rib is not None else LocRib()
        self.restart_time_s = restart_time_s
        self._peers: dict[Nexthop, _PeerRestartState] = {}

    def _state(self, peer: Nexthop) -> _PeerRestartState:
        return self._peers.setdefault(peer, _PeerRestartState())

    # -- announcements --------------------------------------------------------

    def announce(self, route: Route, now: float = 0.0) -> list[RouteUpdate]:
        """A peer announces a route; refreshes any stale marking."""
        self._state(route.peer).stale.discard(route.prefix)
        return self.loc_rib.announce(route, now)

    def withdraw(
        self, peer: Nexthop, prefix: Prefix, now: float = 0.0
    ) -> list[RouteUpdate]:
        self._state(peer).stale.discard(prefix)
        return self.loc_rib.withdraw(prefix, peer, now)

    # -- session events --------------------------------------------------------

    def peer_down_graceful(self, peer: Nexthop, now: float) -> list[RouteUpdate]:
        """GR-capable session loss: retain and mark stale. No updates —
        that silence is the whole point of Graceful Restart."""
        state = self._state(peer)
        state.restarting = True
        state.deadline = now + self.restart_time_s
        state.stale = set(self.loc_rib.prefixes_from(peer))
        return []

    def peer_down_hard(self, peer: Nexthop, now: float) -> list[RouteUpdate]:
        """Non-GR session loss: classic immediate withdrawal of everything."""
        state = self._state(peer)
        state.restarting = False
        state.stale.clear()
        return self.loc_rib.drop_peer(peer, now)

    def peer_restarted(self, peer: Nexthop) -> None:
        """The session re-established; re-announcements will now refresh
        routes. Stale entries persist until this peer's End-of-RIB."""
        self._state(peer).restarting = False

    def end_of_rib(self, peer: Nexthop, now: float) -> list[RouteUpdate]:
        """The restarted peer finished re-advertising: flush whatever it
        did not refresh (RFC 4724 §4.1)."""
        return self._flush(peer, now)

    def tick(self, now: float) -> list[RouteUpdate]:
        """Expire restart timers; flush stale routes of peers that never
        came back."""
        updates: list[RouteUpdate] = []
        for peer, state in self._peers.items():
            if state.restarting and now >= state.deadline:
                state.restarting = False
                updates.extend(self._flush(peer, now))
        return updates

    def _flush(self, peer: Nexthop, now: float) -> list[RouteUpdate]:
        state = self._state(peer)
        updates: list[RouteUpdate] = []
        for prefix in sorted(state.stale):
            updates.extend(self.loc_rib.withdraw(prefix, peer, now))
        state.stale.clear()
        return updates

    # -- introspection -----------------------------------------------------------

    def stale_count(self, peer: Nexthop) -> int:
        return len(self._state(peer).stale)

    def is_restarting(self, peer: Nexthop) -> bool:
        return self._state(peer).restarting
