"""The best-path decision process ("a simple best-path selection policy").

Deterministic subset of the standard BGP decision process:

1. highest LOCAL_PREF,
2. shortest AS_PATH,
3. lowest ORIGIN (IGP < EGP < INCOMPLETE),
4. lowest MED (compared across peers — always-compare-MED),
5. lowest peer key (the "lowest router-id" tie-break).

Total and deterministic, so the Loc-RIB is a pure function of the
Adj-RIB-Ins — a property the integration tests rely on.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.bgp.rib import Route

#: (-local_pref, as_path_length, origin, med, peer key) — smaller wins.
PreferenceKey = tuple[int, int, int, int, int]


def preference_key(route: "Route") -> PreferenceKey:
    """Sort key: smaller is better."""
    attributes = route.attributes
    return (
        -attributes.local_pref,
        attributes.as_path_length,
        int(attributes.origin),
        attributes.med,
        route.peer.key,
    )


def compare_routes(a: "Route", b: "Route") -> int:
    """-1 when ``a`` is preferred, +1 when ``b`` is, never 0 (peer breaks ties)."""
    key_a, key_b = preference_key(a), preference_key(b)
    if key_a < key_b:
        return -1
    if key_b < key_a:
        return 1
    raise AssertionError("distinct routes from one peer cannot tie")


def best_route(routes: Iterable["Route"]) -> Optional["Route"]:
    """The winner of the decision process, or None for no candidates."""
    best: Optional["Route"] = None
    best_key: Optional[PreferenceKey] = None
    for route in routes:
        key = preference_key(route)
        if best_key is None or key < best_key:
            best, best_key = route, key
    return best
