"""Peer sessions and End-of-RIB tracking (RFC 4724 semantics).

Section 2: "While BGP is initializing but before the End-of-RIB is
received, SMALTA inserts updates into the original tree, but does not
process them further. ... After the BGP control has received all
End-of-RIB markers from all neighbors, SMALTA runs its initial
snapshot(OT)." :class:`SessionManager` implements exactly that gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.nexthop import Nexthop


@dataclass
class PeerSession:
    """State of one BGP neighbor."""

    peer: Nexthop
    established: bool = True
    end_of_rib_received: bool = False
    announcements: int = 0
    withdrawals: int = 0

    def mark_end_of_rib(self) -> None:
        self.end_of_rib_received = True


@dataclass
class SessionManager:
    """Tracks all neighbors and answers "has every peer sent End-of-RIB?"."""

    sessions: dict[Nexthop, PeerSession] = field(default_factory=dict)

    def add_peer(self, peer: Nexthop) -> PeerSession:
        if peer in self.sessions:
            raise ValueError(f"peer {peer} already has a session")
        session = PeerSession(peer)
        self.sessions[peer] = session
        return session

    def session(self, peer: Nexthop) -> PeerSession:
        return self.sessions[peer]

    def end_of_rib(self, peer: Nexthop) -> bool:
        """Record a peer's End-of-RIB; True when *all* peers are done."""
        self.sessions[peer].mark_end_of_rib()
        return self.all_initialized

    @property
    def all_initialized(self) -> bool:
        return bool(self.sessions) and all(
            s.end_of_rib_received for s in self.sessions.values() if s.established
        )

    def drop(self, peer: Nexthop) -> None:
        """Session loss; the peer's routes must be withdrawn by the caller."""
        self.sessions[peer].established = False

    def __len__(self) -> int:
        return len(self.sessions)
