"""Adj-RIB-In and Loc-RIB: from peer announcements to FIB updates.

The Loc-RIB recomputes the best route per prefix on every change and
emits the difference as :class:`~repro.net.update.RouteUpdate` objects —
exactly the non-aggregated stream of Figure 1 that feeds SMALTA (after
BGP→IGP nexthop resolution, which the router pipeline applies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bgp.attributes import PathAttributes
from repro.bgp.bestpath import best_route
from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix
from repro.net.update import RouteUpdate


@dataclass(frozen=True)
class Route:
    """One candidate route: a prefix heard from a peer.

    ``peer`` doubles as the BGP nexthop (eBGP peers are adjacent, as in
    the paper's RouteViews construction).
    """

    prefix: Prefix
    peer: Nexthop
    attributes: PathAttributes = PathAttributes()


class LocRib:
    """Per-prefix best-route state over any number of peers."""

    def __init__(self) -> None:
        #: prefix → {peer → Route}
        self._candidates: dict[Prefix, dict[Nexthop, Route]] = {}
        #: prefix → currently-selected best route
        self._selected: dict[Prefix, Route] = {}

    # -- peer input --------------------------------------------------------

    def announce(self, route: Route, timestamp: float = 0.0) -> list[RouteUpdate]:
        """A peer (re)announces a route; returns resulting FIB updates."""
        self._candidates.setdefault(route.prefix, {})[route.peer] = route
        return self._reselect(route.prefix, timestamp)

    def withdraw(
        self, prefix: Prefix, peer: Nexthop, timestamp: float = 0.0
    ) -> list[RouteUpdate]:
        """A peer withdraws its route; returns resulting FIB updates."""
        candidates = self._candidates.get(prefix)
        if not candidates or peer not in candidates:
            return []
        del candidates[peer]
        if not candidates:
            del self._candidates[prefix]
        return self._reselect(prefix, timestamp)

    def drop_peer(self, peer: Nexthop, timestamp: float = 0.0) -> list[RouteUpdate]:
        """Session loss: withdraw everything heard from ``peer``."""
        updates: list[RouteUpdate] = []
        for prefix in [
            p for p, cands in self._candidates.items() if peer in cands
        ]:
            updates.extend(self.withdraw(prefix, peer, timestamp))
        return updates

    # -- selection ----------------------------------------------------------

    def _reselect(self, prefix: Prefix, timestamp: float) -> list[RouteUpdate]:
        candidates = self._candidates.get(prefix, {})
        winner = best_route(candidates.values())
        previous = self._selected.get(prefix)
        if winner is None:
            if previous is None:
                return []
            del self._selected[prefix]
            return [RouteUpdate.withdraw(prefix, timestamp)]
        if previous is not None and previous.peer == winner.peer and (
            previous.attributes == winner.attributes
        ):
            return []  # selection unchanged
        self._selected[prefix] = winner
        if previous is not None and previous.peer == winner.peer:
            return []  # same nexthop; attribute change is FIB-invisible
        return [RouteUpdate.announce(prefix, winner.peer, timestamp)]

    # -- introspection --------------------------------------------------------

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._selected.get(prefix)

    def table(self) -> dict[Prefix, Nexthop]:
        """The best-path table: prefix → BGP nexthop (winning peer)."""
        return {prefix: route.peer for prefix, route in self._selected.items()}

    def candidate_count(self, prefix: Prefix) -> int:
        return len(self._candidates.get(prefix, {}))

    def prefixes_from(self, peer: Nexthop) -> list[Prefix]:
        """All prefixes for which ``peer`` currently has a candidate."""
        return [
            prefix
            for prefix, candidates in self._candidates.items()
            if peer in candidates
        ]

    def __len__(self) -> int:
        return len(self._selected)
