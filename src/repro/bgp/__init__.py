"""BGP machinery: per-peer RIBs, best-path selection, End-of-RIB sessions.

The paper derives its FIB update streams from BGP: iBGP feeds from Tier-1
IGRs (already best-path-selected) and RouteViews eBGP feeds run through
"a simple best-path selection policy" (Section 4.1.2). This package
implements that substrate: Adj-RIB-In per peer, a deterministic decision
process, a Loc-RIB that emits the non-aggregated update stream SMALTA
consumes, and RFC 4724-style End-of-RIB session handling that drives
SMALTA's startup behaviour (Section 2).
"""

from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.bestpath import best_route, compare_routes
from repro.bgp.graceful_restart import GracefulRestartManager
from repro.bgp.rib import LocRib, Route
from repro.bgp.session import PeerSession, SessionManager

__all__ = [
    "GracefulRestartManager",
    "LocRib",
    "Origin",
    "PathAttributes",
    "PeerSession",
    "Route",
    "SessionManager",
    "best_route",
    "compare_routes",
]
