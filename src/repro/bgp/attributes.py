"""BGP path attributes — the inputs to the best-path decision process."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Origin(enum.IntEnum):
    """RFC 4271 origin codes; lower is preferred."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


@dataclass(frozen=True)
class PathAttributes:
    """The attribute subset our decision process consults.

    ``as_path`` is the AS sequence (only its length matters to the
    decision); ``med`` is compared across all routes (always-compare-MED,
    the simple policy the paper's RouteViews processing implies).
    """

    local_pref: int = 100
    as_path: tuple[int, ...] = field(default_factory=tuple)
    origin: Origin = Origin.IGP
    med: int = 0

    @property
    def as_path_length(self) -> int:
        return len(self.as_path)

    def prepended(self, asn: int, times: int = 1) -> "PathAttributes":
        """A copy with ``asn`` prepended (AS-path padding)."""
        return PathAttributes(
            local_pref=self.local_pref,
            as_path=(asn,) * times + self.as_path,
            origin=self.origin,
            med=self.med,
        )
