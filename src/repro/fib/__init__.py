"""Tree Bitmap — the FIB lookup substrate of the paper's evaluation.

The paper measures FIB storage M(·) and lookup cost T(·) with the Tree
Bitmap software reference design (Eatherton, Dittia, Varghese, §6):
Initial Array Optimization followed by a constant stride of 4, 32-bit
pointers, 8-byte nodes.

- :class:`repro.fib.treebitmap.TreeBitmap` — the structure itself, with
  per-address lookup and incremental updates.
- :func:`repro.fib.memory.tbm_memory_bytes` — M(·).
- :func:`repro.fib.lookup_stats.average_lookup_accesses` — T(·), the
  expected memory accesses per lookup under a uniform traffic matrix.
- :func:`repro.fib.strides.select_configuration` — "we tested a variety of
  stride lengths and selected the one that minimizes memory".
"""

from repro.fib.linear import LinearFib
from repro.fib.lookup_stats import average_lookup_accesses
from repro.fib.memory import MemoryModel, tbm_memory_bytes
from repro.fib.patricia import PatriciaFib
from repro.fib.strides import TbmConfig, select_configuration
from repro.fib.treebitmap import TreeBitmap

__all__ = [
    "LinearFib",
    "MemoryModel",
    "PatriciaFib",
    "TbmConfig",
    "TreeBitmap",
    "average_lookup_accesses",
    "select_configuration",
    "tbm_memory_bytes",
]
