"""The Tree Bitmap multibit-trie FIB (software reference design).

Structure (Eatherton et al., with the paper's configuration):

- An **initial array** indexed by the first ``initial_stride`` address
  bits. Each slot holds the best-matching nexthop among prefixes no
  longer than the initial stride, plus a pointer to a Tree Bitmap node
  for the longer prefixes falling in that slot.
- **Tree Bitmap nodes**, each covering ``stride`` further address bits.
  A node stores an *internal bitmap* (2**stride − 1 bits: the prefixes
  ending inside the node, in heap order) and an *external bitmap*
  (2**stride bits: which children exist). The paper's configuration is
  stride 4 → 15 + 16 bitmap bits + a 32-bit pointer = an 8-byte node.

Lookup cost is one memory access for the initial array plus one per node
visited; :mod:`repro.fib.lookup_stats` integrates this over a uniform
traffic matrix exactly.

Incremental updates (insert/delete) are supported so the router pipeline
can apply FIB downloads directly to the structure.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from repro.net.nexthop import DROP, Nexthop
from repro.net.prefix import Prefix


class TbmNode:
    """One Tree Bitmap node covering ``stride`` address bits."""

    __slots__ = ("internal", "results", "children")

    def __init__(self, stride: int) -> None:
        #: Internal bitmap as an int; bit i set ⇔ heap position i holds a
        #: prefix ending inside this node.
        self.internal = 0
        #: Heap position → nexthop for set internal bits.
        self.results: dict[int, Nexthop] = {}
        #: Chunk value → child node (the external bitmap is implicit).
        self.children: dict[int, "TbmNode"] = {}

    @property
    def is_empty(self) -> bool:
        return not self.results and not self.children


def _heap_position(length: int, bits: int) -> int:
    """Heap-order position of a relative prefix: lengths 0..stride-1."""
    return (1 << length) - 1 + bits


class TreeBitmap:
    """A Tree Bitmap FIB over a ``width``-bit address space."""

    def __init__(
        self,
        width: int = 32,
        initial_stride: int = 12,
        stride: int = 4,
    ) -> None:
        if initial_stride < 1 or initial_stride > width:
            raise ValueError(f"initial stride {initial_stride} outside [1, {width}]")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if (width - initial_stride) % stride:
            raise ValueError(
                f"width {width} minus initial stride {initial_stride} must be "
                f"a multiple of the stride {stride}"
            )
        self.width = width
        self.initial_stride = initial_stride
        self.stride = stride
        #: Best nexthop among prefixes of length <= initial_stride, per slot.
        self._slot_results: list[Nexthop] = [DROP] * (1 << initial_stride)
        #: Subtrie roots for prefixes longer than the initial stride.
        self._slot_children: dict[int, TbmNode] = {}
        #: All entries, kept to recompute slot results on short deletes.
        self._entries: dict[Prefix, Nexthop] = {}
        #: Churn accounting: the structural write cost of the download
        #: stream (nodes allocated/freed, initial-array slots rewritten) —
        #: what a hardware FIB actually pays per update.
        self.nodes_allocated = 0
        self.nodes_freed = 0
        self.slots_rewritten = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Mapping[Prefix, Nexthop] | Iterable[tuple[Prefix, Nexthop]],
        width: int = 32,
        initial_stride: int = 12,
        stride: int = 4,
    ) -> "TreeBitmap":
        fib = cls(width, initial_stride, stride)
        items = table.items() if isinstance(table, Mapping) else table
        for prefix, nexthop in items:
            fib.insert(prefix, nexthop)
        return fib

    # -- updates ------------------------------------------------------------

    def insert(self, prefix: Prefix, nexthop: Nexthop) -> None:
        """Insert or overwrite an entry."""
        if prefix.width != self.width:
            raise ValueError(f"{prefix} does not fit a width-{self.width} FIB")
        self._entries[prefix] = nexthop
        if prefix.length <= self.initial_stride:
            self._recompute_slot_range(prefix)
        else:
            node = self._node_for(prefix, create=True)
            assert node is not None
            position = self._internal_position(prefix)
            node.internal |= 1 << position
            node.results[position] = nexthop

    def delete(self, prefix: Prefix) -> None:
        """Remove an entry; missing prefixes raise KeyError."""
        del self._entries[prefix]
        if prefix.length <= self.initial_stride:
            self._recompute_slot_range(prefix)
            return
        path = self._node_path(prefix)
        if path is None:
            raise KeyError(f"{prefix} has no Tree Bitmap node")
        node = path[-1][2]
        position = self._internal_position(prefix)
        node.internal &= ~(1 << position)
        node.results.pop(position, None)
        self._prune_path(path)

    # -- lookup --------------------------------------------------------------

    def lookup(self, address: int) -> Nexthop:
        """Longest-prefix-match; DROP when nothing matches."""
        slot = address >> (self.width - self.initial_stride)
        best = self._slot_results[slot]
        node = self._slot_children.get(slot)
        consumed = self.initial_stride
        while node is not None:
            bits_left = self.width - consumed
            chunk = (
                (address >> (bits_left - self.stride)) & ((1 << self.stride) - 1)
                if bits_left >= self.stride
                else 0
            )
            match = self._longest_internal(node, chunk, min(bits_left, self.stride))
            if match is not None:
                best = match
            if bits_left < self.stride:
                break
            node = node.children.get(chunk)
            consumed += self.stride
        return best

    def lookup_accesses(self, address: int) -> int:
        """Memory accesses for one lookup: initial array + nodes visited."""
        slot = address >> (self.width - self.initial_stride)
        node = self._slot_children.get(slot)
        accesses = 1
        consumed = self.initial_stride
        while node is not None:
            accesses += 1
            bits_left = self.width - consumed
            if bits_left < self.stride:
                break
            chunk = (address >> (bits_left - self.stride)) & ((1 << self.stride) - 1)
            node = node.children.get(chunk)
            consumed += self.stride
        return accesses

    def _longest_internal(
        self, node: TbmNode, chunk: int, chunk_bits: int
    ) -> Optional[Nexthop]:
        for length in range(min(self.stride - 1, chunk_bits), -1, -1):
            bits = chunk >> (chunk_bits - length) if length else 0
            position = _heap_position(length, bits)
            if node.internal >> position & 1:
                return node.results[position]
        return None

    # -- structure accounting -------------------------------------------------

    def node_count(self) -> int:
        count = 0
        stack = list(self._slot_children.values())
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def nodes_with_depth(self) -> Iterator[tuple[TbmNode, int]]:
        """All nodes with the number of address bits consumed above them."""
        stack = [
            (node, self.initial_stride) for node in self._slot_children.values()
        ]
        while stack:
            node, consumed = stack.pop()
            yield node, consumed
            stack.extend(
                (child, consumed + self.stride) for child in node.children.values()
            )

    def nodes_with_regions(self) -> Iterator[tuple[TbmNode, int, int]]:
        """All nodes as (node, region_value, bits_consumed) — the region is
        the aligned address block whose lookups visit the node."""
        stack = [
            (node, slot << (self.width - self.initial_stride), self.initial_stride)
            for slot, node in self._slot_children.items()
        ]
        while stack:
            node, value, consumed = stack.pop()
            yield node, value, consumed
            shift = self.width - consumed - self.stride
            for chunk, child in node.children.items():
                stack.append(
                    (child, value | (chunk << shift), consumed + self.stride)
                )

    def result_count(self) -> int:
        """Stored nexthop results inside nodes (internal bitmap population)."""
        return sum(len(node.results) for node, _ in self.nodes_with_depth())

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> dict[Prefix, Nexthop]:
        return dict(self._entries)

    # -- internals --------------------------------------------------------------

    def _slot_range(self, prefix: Prefix) -> tuple[int, int]:
        """Initial-array slots covered by a short prefix (half-open)."""
        shift = self.width - self.initial_stride
        first = prefix.value >> shift
        count = 1 << (self.initial_stride - prefix.length)
        return first, first + count

    def _recompute_slot_range(self, prefix: Prefix) -> None:
        """Rebuild slot results for the region a short prefix covers."""
        first, stop = self._slot_range(prefix)
        shift = self.width - self.initial_stride
        short = [
            (p, nh)
            for p, nh in self._entries.items()
            if p.length <= self.initial_stride
        ]
        for slot in range(first, stop):
            slot_value = slot << shift
            best = DROP
            best_length = -1
            for candidate, nexthop in short:
                if candidate.length > best_length and candidate.contains_address(
                    slot_value
                ):
                    best = nexthop
                    best_length = candidate.length
            if self._slot_results[slot] != best:
                self._slot_results[slot] = best
                self.slots_rewritten += 1

    def _node_for(self, prefix: Prefix, create: bool) -> Optional[TbmNode]:
        path = self._node_path(prefix, create=create)
        return path[-1][2] if path else None

    def _node_path(
        self, prefix: Prefix, create: bool = False
    ) -> Optional[list[tuple[Optional[TbmNode], int, TbmNode]]]:
        """The (parent, chunk, node) chain from the slot root to the node
        owning ``prefix``; None when absent and not creating."""
        slot = prefix.value >> (self.width - self.initial_stride)
        node = self._slot_children.get(slot)
        if node is None:
            if not create:
                return None
            node = TbmNode(self.stride)
            self._slot_children[slot] = node
            self.nodes_allocated += 1
        path: list[tuple[Optional[TbmNode], int, TbmNode]] = [(None, slot, node)]
        remaining = prefix.length - self.initial_stride
        consumed = self.initial_stride
        while remaining >= self.stride:
            bits_left = self.width - consumed
            chunk = (prefix.value >> (bits_left - self.stride)) & (
                (1 << self.stride) - 1
            )
            child = node.children.get(chunk)
            if child is None:
                if not create:
                    return None
                child = TbmNode(self.stride)
                node.children[chunk] = child
                self.nodes_allocated += 1
            path.append((node, chunk, child))
            node = child
            remaining -= self.stride
            consumed += self.stride
        return path

    def _internal_position(self, prefix: Prefix) -> int:
        relative = (prefix.length - self.initial_stride) % self.stride
        if relative == 0 and prefix.length > self.initial_stride:
            # Lengths on a stride boundary live at position 0 of the node
            # *below* the boundary (the node path descends that far).
            relative = 0
        bits = (
            (prefix.value >> (self.width - prefix.length))
            & ((1 << relative) - 1)
            if relative
            else 0
        )
        return _heap_position(relative, bits)

    def _prune_path(self, path: list[tuple[Optional[TbmNode], int, TbmNode]]) -> None:
        for parent, chunk, node in reversed(path):
            if not node.is_empty:
                break
            if parent is None:
                if self._slot_children.get(chunk) is node:
                    del self._slot_children[chunk]
                    self.nodes_freed += 1
            else:
                if parent.children.pop(chunk, None) is not None:
                    self.nodes_freed += 1
