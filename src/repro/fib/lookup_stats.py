"""Lookup cost T(·): expected memory accesses under uniform traffic.

"We measure ... the lookup time expressed as the average number of memory
accesses per lookup assuming every IP address *in the covered space* is
equally likely to be looked up" (Section 4.2) — covered meaning routed:
addresses whose lookup yields a real nexthop. Weighting by covered space
(rather than the whole 2**width) is what makes T comparable between the
OT and the AT: both cover exactly the same addresses.

Every lookup touches the initial array once, then one access per Tree
Bitmap node on its path; an address visits a node exactly when it lies in
the node's region. So::

    T = 1 + Σ over nodes of covered(region(node)) / covered(everything)

computed exactly — no sampling — via a coverage-counting trie built from
the FIB's own entries (explicit DROP entries mark *uncovered* space).
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.fib.treebitmap import TreeBitmap
from repro.net.nexthop import DROP, Nexthop
from repro.net.prefix import Prefix


class _CNode:
    __slots__ = ("left", "right", "label", "covered_fixed", "gap")

    def __init__(self) -> None:
        self.left: Optional[_CNode] = None
        self.right: Optional[_CNode] = None
        self.label: Optional[Nexthop] = None
        #: Addresses under this node routed by labels at-or-below it.
        self.covered_fixed: int = 0
        #: Addresses under this node governed by labels *above* it.
        self.gap: int = 0


class CoverageMap:
    """Counts routed addresses within arbitrary aligned regions of a table."""

    def __init__(self, table: Mapping[Prefix, Nexthop], width: int) -> None:
        self.width = width
        self._root = _CNode()
        for prefix, nexthop in table.items():
            node = self._root
            for index in range(prefix.length):
                bit = prefix.bit(index)
                nxt = node.right if bit else node.left
                if nxt is None:
                    nxt = _CNode()
                    if bit:
                        node.right = nxt
                    else:
                        node.left = nxt
                node = nxt
            node.label = nexthop
        self._annotate(self._root, width)

    def _annotate(self, root: _CNode, width: int) -> None:
        # Post-order via an explicit stack (recursion would overflow at
        # IPv6 depth): children are annotated before their parent reads
        # covered_fixed/gap off them.
        stack: list[tuple[_CNode, int, bool]] = [(root, width, False)]
        while stack:
            node, bits_left, expanded = stack.pop()
            if not expanded:
                stack.append((node, bits_left, True))
                for child in (node.left, node.right):
                    if child is not None:
                        stack.append((child, bits_left - 1, False))
                continue
            half = 1 << (bits_left - 1) if bits_left else 0
            covered = 0
            gap = 0
            routed_here = node.label is not None and node.label != DROP
            for child in (node.left, node.right):
                if child is not None:
                    covered += child.covered_fixed
                    if node.label is None:
                        gap += child.gap
                    elif routed_here:
                        covered += child.gap
                else:
                    if node.label is None:
                        gap += half
                    elif routed_here:
                        covered += half
            if node.left is None and node.right is None:
                # A labeled leaf has no descendants; its whole region
                # follows its own label. (An unlabeled leaf cannot exist.)
                covered = (1 << bits_left) if routed_here else 0
                gap = 0 if node.label is not None else (1 << bits_left)
            node.covered_fixed = covered
            node.gap = gap

    def covered(self, value: int, length: int) -> int:
        """Routed addresses within the aligned region (value, length)."""
        node: Optional[_CNode] = self._root
        context_routed = False
        for index in range(length):
            if node is not None and node.label is not None:
                context_routed = node.label != DROP
            bit = (value >> (self.width - 1 - index)) & 1
            node = (node.right if bit else node.left) if node is not None else None
            if node is None:
                return (1 << (self.width - length)) if context_routed else 0
        if node.label is not None:
            context_routed = node.label != DROP
        return node.covered_fixed + (node.gap if context_routed else 0)

    def total_covered(self) -> int:
        return self.covered(0, 0)


def average_lookup_accesses(
    fib: TreeBitmap, table: Optional[Mapping[Prefix, Nexthop]] = None
) -> float:
    """T(·): exact expected accesses per lookup over the covered space.

    ``table`` defaults to the FIB's own entries. An empty covered space
    (or empty FIB) yields 1.0 — the mandatory initial-array access.
    """
    coverage = CoverageMap(table if table is not None else fib.entries(), fib.width)
    total = coverage.total_covered()
    if total == 0:
        return 1.0
    accesses = 1.0
    for _, value, consumed in fib.nodes_with_regions():
        accesses += coverage.covered(value, consumed) / total
    return accesses


def entry_weighted_lookup_accesses(fib: TreeBitmap) -> float:
    """T(·) with each *route* equally popular: the mean lookup cost over
    destinations drawn per-entry rather than per-address.

    Per-address weighting (above) concentrates traffic mass on short
    prefixes (a /8 outweighs 65,536 /24s), which makes aggregation look
    lookup-neutral. Weighting each FIB entry equally — every route
    receives the same traffic share — matches the paper's reported
    T(·) behaviour, where aggregation's shorter prefixes cut accesses by
    ~25% (see EXPERIMENTS.md for the discussion). Empty FIB → 1.0.
    """
    entries = fib.entries()
    if not entries:
        return 1.0
    total = 0
    for prefix in entries:
        remaining = prefix.length - fib.initial_stride
        if remaining <= 0:
            nodes = 0  # resolved by the initial array alone
        else:
            nodes = remaining // fib.stride + 1
        total += 1 + nodes
    return total / len(entries)


def uniform_lookup_accesses(fib: TreeBitmap) -> float:
    """Expected accesses when *every* address (routed or not) is equally
    likely — the naive weighting, kept for comparison and tests."""
    total = 1.0
    for _, consumed in fib.nodes_with_depth():
        total += 2.0 ** -consumed
    return total


def sampled_lookup_accesses(
    fib: TreeBitmap,
    samples: int = 10000,
    seed: Optional[int] = None,
    covered_only: bool = False,
) -> float:
    """Monte-Carlo estimate of the lookup cost (tests use it to validate
    the exact computations). With ``covered_only``, rejection-samples
    addresses that actually route."""
    rng = random.Random(seed)
    total = 0
    count = 0
    attempts = 0
    while count < samples:
        attempts += 1
        if attempts > samples * 1000:
            raise RuntimeError("covered space too sparse to sample")
        address = rng.getrandbits(fib.width)
        if covered_only and fib.lookup(address) == DROP:
            continue
        total += fib.lookup_accesses(address)
        count += 1
    return total / count
