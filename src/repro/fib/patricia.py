"""A path-compressed binary (Patricia) trie FIB.

Section 4.2: "FIB data structures other than TBM may experience different
levels of memory savings, depending on the actual mechanism used in
storing the FIB entries. Router vendors must test against their own FIB
storage methods." This second structure makes that testable: a classic
path-compressed binary trie whose node count is linear in the number of
entries (at most 2·n − 1 nodes), with a simple memory model
(skip-compressed branch nodes of two pointers plus a bit index; entries
carry their prefix and nexthop).

Compared to Tree Bitmap: no stride tuning, worst-case lookup equal to the
longest distinct-prefix path instead of W/stride, memory strictly
proportional to entries — so aggregation's *entry* savings translate 1:1
into memory savings here, where TBM's structural sharing damps them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from repro.net.nexthop import DROP, Nexthop
from repro.net.prefix import Prefix


class PatriciaNode:
    """A (possibly compressed) trie node.

    ``prefix`` is the full prefix this node represents; children diverge
    at bit ``prefix.length``. ``nexthop`` is None for pure branch nodes.
    """

    __slots__ = ("prefix", "nexthop", "left", "right")

    def __init__(self, prefix: Prefix, nexthop: Optional[Nexthop] = None) -> None:
        self.prefix = prefix
        self.nexthop = nexthop
        self.left: Optional[PatriciaNode] = None
        self.right: Optional[PatriciaNode] = None

    @property
    def is_branch(self) -> bool:
        return self.nexthop is None

    def child_count(self) -> int:
        return (self.left is not None) + (self.right is not None)


def _common_prefix(a: Prefix, b: Prefix) -> Prefix:
    """The longest prefix both a and b extend."""
    width = a.width
    limit = min(a.length, b.length)
    diff = (a.value ^ b.value) >> (width - limit) if limit else 0
    if diff == 0:
        common = limit
    else:
        common = limit - diff.bit_length()
    mask_shift = width - common
    value = (a.value >> mask_shift) << mask_shift if common else 0
    return Prefix(value, common, width)


class PatriciaFib:
    """Longest-prefix-match over a path-compressed binary trie."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self._root: Optional[PatriciaNode] = None
        self._count = 0

    @classmethod
    def from_table(
        cls,
        table: Mapping[Prefix, Nexthop] | Iterable[tuple[Prefix, Nexthop]],
        width: int = 32,
    ) -> "PatriciaFib":
        fib = cls(width)
        items = table.items() if isinstance(table, Mapping) else table
        for prefix, nexthop in items:
            fib.insert(prefix, nexthop)
        return fib

    # -- updates --------------------------------------------------------------

    def insert(self, prefix: Prefix, nexthop: Nexthop) -> None:
        if prefix.width != self.width:
            raise ValueError(f"{prefix} does not fit a width-{self.width} FIB")
        if self._root is None:
            self._root = PatriciaNode(prefix, nexthop)
            self._count = 1
            return
        # Iterative descent (recursion would overflow at IPv6 depth):
        # remember where the current node hangs so a split can be spliced
        # back into its parent slot.
        parent: Optional[PatriciaNode] = None
        parent_bit = 0
        node = self._root
        while True:
            common = _common_prefix(node.prefix, prefix)
            if common.length < node.prefix.length:
                # Split: a new branch (or entry) node above `node`.
                if common.length == prefix.length:
                    split = PatriciaNode(prefix, nexthop)
                else:
                    split = PatriciaNode(common)
                self._attach(split, node)
                if common.length < prefix.length:
                    self._attach(split, PatriciaNode(prefix, nexthop))
                if parent is None:
                    self._root = split
                elif parent_bit:
                    parent.right = split
                else:
                    parent.left = split
                self._count += 1
                return
            # node.prefix is a prefix of `prefix`.
            if prefix.length == node.prefix.length:
                if node.nexthop is None:
                    self._count += 1
                node.nexthop = nexthop
                return
            bit = prefix.bit(node.prefix.length)
            child = node.right if bit else node.left
            if child is None:
                self._attach(node, PatriciaNode(prefix, nexthop))
                self._count += 1
                return
            parent, parent_bit, node = node, bit, child

    def _attach(self, parent: PatriciaNode, child: PatriciaNode) -> None:
        if child.prefix.bit(parent.prefix.length):
            parent.right = child
        else:
            parent.left = child

    def delete(self, prefix: Prefix) -> None:
        """Remove an entry; missing prefixes raise KeyError."""
        path: list[PatriciaNode] = []
        node = self._root
        while node is not None:
            if node.prefix == prefix:
                break
            if not node.prefix.contains(prefix) or node.prefix.length >= prefix.length:
                node = None
                break
            path.append(node)
            node = (
                node.right if prefix.bit(node.prefix.length) else node.left
            )
        if node is None or node.nexthop is None:
            raise KeyError(f"{prefix} is not in the FIB")
        node.nexthop = None
        self._count -= 1
        self._compact_upward(path, node)

    def _compact_upward(
        self, path: list[PatriciaNode], node: PatriciaNode
    ) -> None:
        """Remove now-pointless branch nodes after a delete."""
        chain = path + [node]
        for index in range(len(chain) - 1, -1, -1):
            current = chain[index]
            if current.nexthop is not None:
                break
            children = current.child_count()
            if children >= 2:
                break
            # Zero or one child: splice this branch node out.
            replacement = current.left if current.left is not None else current.right
            if index == 0:
                self._root = replacement
            else:
                parent = chain[index - 1]
                if parent.left is current:
                    parent.left = replacement
                else:
                    parent.right = replacement

    # -- lookup ------------------------------------------------------------------

    def lookup(self, address: int) -> Nexthop:
        best = DROP
        node = self._root
        while node is not None:
            if not node.prefix.contains_address(address):
                break
            if node.nexthop is not None:
                best = node.nexthop
            if node.prefix.length >= self.width:
                break
            bit = (address >> (self.width - 1 - node.prefix.length)) & 1
            node = node.right if bit else node.left
        return best

    def lookup_steps(self, address: int) -> int:
        """Nodes visited for one lookup (the Patricia cost measure)."""
        steps = 0
        node = self._root
        while node is not None:
            if not node.prefix.contains_address(address):
                break
            steps += 1
            if node.prefix.length >= self.width:
                break
            bit = (address >> (self.width - 1 - node.prefix.length)) & 1
            node = node.right if bit else node.left
        return max(steps, 1)

    # -- accounting ----------------------------------------------------------------

    def node_count(self) -> int:
        count = 0
        for _ in self._nodes():
            count += 1
        return count

    def _nodes(self) -> Iterator[PatriciaNode]:
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            yield node
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    def memory_bytes(
        self, branch_bytes: int = 12, entry_bytes: int = 16
    ) -> int:
        """A simple model: branch nodes hold two pointers + a bit index
        (12 B); entry nodes additionally store the nexthop (16 B)."""
        total = 0
        for node in self._nodes():
            total += entry_bytes if node.nexthop is not None else branch_bytes
        return total

    def entries(self) -> dict[Prefix, Nexthop]:
        return {
            node.prefix: node.nexthop
            for node in self._nodes()
            if node.nexthop is not None
        }

    def __len__(self) -> int:
        return self._count
