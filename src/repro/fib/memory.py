"""The FIB memory model — M(·) in the paper's tables.

The paper's configuration: "32-bit pointers, the Initial Array
Optimization followed by a constant stride length of 4. Altogether, the
size of a single TBM node in our experiments is 8 bytes." (Section 4.2).

An 8-byte node packs the 15-bit internal bitmap, 16-bit external bitmap
and a 32-bit pointer (children and results allocated contiguously, as in
Eatherton's software reference). The initial array stores one 32-bit
word per slot (result index + subtrie pointer). Result storage beyond the
node is configurable; the paper's 8-byte figure treats results as part of
the contiguous block reached via the node pointer, so the default charges
``result_bytes`` per stored nexthop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fib.treebitmap import TreeBitmap


@dataclass(frozen=True)
class MemoryModel:
    """Byte costs of the Tree Bitmap components."""

    node_bytes: int = 8
    initial_entry_bytes: int = 4
    result_bytes: int = 0

    def total(self, fib: TreeBitmap) -> int:
        return (
            fib.node_count() * self.node_bytes
            + (1 << fib.initial_stride) * self.initial_entry_bytes
            + fib.result_count() * self.result_bytes
        )


#: The paper's configuration.
PAPER_MODEL = MemoryModel()


def tbm_memory_bytes(fib: TreeBitmap, model: MemoryModel = PAPER_MODEL) -> int:
    """M(·): the bytes of FIB memory a Tree Bitmap consumes."""
    return model.total(fib)
