"""Tree Bitmap configuration selection.

"We tested a variety of stride lengths and selected the one that
minimizes the memory requirement" (Section 4.2). The paper fixed the
Initial Array Optimization + constant stride 4; this module sweeps the
valid (initial_stride, stride) combinations and picks the cheapest for a
given table, which is how every experiment chooses its FIB layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.fib.memory import MemoryModel, PAPER_MODEL
from repro.fib.treebitmap import TreeBitmap
from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix


@dataclass(frozen=True)
class TbmConfig:
    """One Tree Bitmap layout choice."""

    initial_stride: int
    stride: int

    def build(
        self,
        table: Mapping[Prefix, Nexthop] | Iterable[tuple[Prefix, Nexthop]],
        width: int = 32,
    ) -> TreeBitmap:
        return TreeBitmap.from_table(
            table, width=width, initial_stride=self.initial_stride, stride=self.stride
        )


#: The paper's configuration: Initial Array + constant stride 4.
PAPER_CONFIG = TbmConfig(initial_stride=12, stride=4)


def valid_configurations(
    width: int = 32,
    strides: Sequence[int] = (4,),
    initial_strides: Sequence[int] = (4, 8, 12, 16),
) -> list[TbmConfig]:
    """All layouts where the strides tile the address width exactly."""
    return [
        TbmConfig(initial_stride=s0, stride=s)
        for s0 in initial_strides
        for s in strides
        if s0 < width and (width - s0) % s == 0
    ]


def select_configuration(
    table: Mapping[Prefix, Nexthop],
    width: int = 32,
    candidates: Sequence[TbmConfig] | None = None,
    model: MemoryModel = PAPER_MODEL,
) -> tuple[TbmConfig, TreeBitmap]:
    """The memory-minimal configuration for ``table`` and its built FIB."""
    if candidates is None:
        candidates = valid_configurations(width)
    if not candidates:
        raise ValueError("no valid Tree Bitmap configurations to choose from")
    best: tuple[int, TbmConfig, TreeBitmap] | None = None
    for config in candidates:
        fib = config.build(table, width)
        cost = model.total(fib)
        if best is None or cost < best[0]:
            best = (cost, config, fib)
    assert best is not None
    return best[1], best[2]
