"""A naive linear-scan FIB — the lookup oracle for Tree Bitmap tests."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.net.nexthop import DROP, Nexthop
from repro.net.prefix import Prefix


class LinearFib:
    """Longest-prefix match by scanning every entry. O(n) lookups, O(1)
    updates; exists for correctness cross-checks, not performance."""

    def __init__(self, width: int = 32) -> None:
        self.width = width
        self._entries: dict[Prefix, Nexthop] = {}

    @classmethod
    def from_table(
        cls,
        table: Mapping[Prefix, Nexthop] | Iterable[tuple[Prefix, Nexthop]],
        width: int = 32,
    ) -> "LinearFib":
        fib = cls(width)
        items = table.items() if isinstance(table, Mapping) else table
        for prefix, nexthop in items:
            fib.insert(prefix, nexthop)
        return fib

    def insert(self, prefix: Prefix, nexthop: Nexthop) -> None:
        if prefix.width != self.width:
            raise ValueError(f"{prefix} does not fit a width-{self.width} FIB")
        self._entries[prefix] = nexthop

    def delete(self, prefix: Prefix) -> None:
        del self._entries[prefix]

    def lookup(self, address: int) -> Nexthop:
        best = DROP
        best_length = -1
        for prefix, nexthop in self._entries.items():
            if prefix.length > best_length and prefix.contains_address(address):
                best = nexthop
                best_length = prefix.length
        return best

    def entries(self) -> dict[Prefix, Nexthop]:
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
