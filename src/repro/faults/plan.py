"""Deterministic, seeded fault injection for the zebra→kernel channel.

The simulated netlink of :class:`~repro.router.kernel.KernelFib` never
fails, so nothing downstream of SMALTA ever exercises the conditions a
real router faces: dropped netlink messages (detected by a missing ACK),
``errno`` returns, slow acknowledgements, and duplicated deliveries
after a retransmit. A :class:`FaultPlan` is the seam that makes those
conditions reproducible — it is injected into the
:class:`~repro.router.channel.DownloadChannel` the same way the repo
injects clocks (see :class:`~repro.core.manager.SmaltaManager`): an
optional constructor argument, ``None`` meaning "the fault-free world".

Determinism contract: two plans built with the same :class:`FaultRates`
and seed produce the identical decision sequence, decision by decision,
regardless of wall clock or interleaving. Every retry/backoff/resync
behaviour downstream is therefore replayable from ``(rates, seed)``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """What happens to one delivery attempt of one FIB download."""

    DELIVER = "deliver"  #: the op reaches the kernel normally
    DROP = "drop"  #: the op is lost; the sender sees an ACK timeout
    ERROR = "error"  #: the kernel rejects the op (netlink errno)
    LATENCY = "latency"  #: the op is delivered after an added delay
    DUPLICATE = "duplicate"  #: the op is delivered twice (retransmit race)


#: The injectable (non-DELIVER) kinds, in cumulative-threshold order.
FAULT_KINDS: tuple[FaultKind, ...] = (
    FaultKind.DROP,
    FaultKind.ERROR,
    FaultKind.LATENCY,
    FaultKind.DUPLICATE,
)


@dataclass(frozen=True)
class FaultDecision:
    """One attempt's fate: the kind plus any added delivery delay."""

    kind: FaultKind
    delay_s: float = 0.0

    @property
    def delivered(self) -> bool:
        """Whether the kernel received the op (possibly late or twice)."""
        return self.kind not in (FaultKind.DROP, FaultKind.ERROR)


@dataclass(frozen=True)
class FaultRates:
    """Per-attempt probabilities of each fault kind (the rest delivers).

    The four rates must each be in [0, 1] and sum to at most 1; the
    remainder is the clean-delivery probability.
    """

    drop: float = 0.0
    error: float = 0.0
    latency: float = 0.0
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        total = 0.0
        for name in ("drop", "error", "latency", "duplicate"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {value}")
            total += value
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total}, above 1.0")

    @property
    def total(self) -> float:
        return self.drop + self.error + self.latency + self.duplicate

    def thresholds(self) -> tuple[float, float, float, float]:
        """Cumulative roll thresholds in :data:`FAULT_KINDS` order."""
        a = self.drop
        b = a + self.error
        c = b + self.latency
        return (a, b, c, c + self.duplicate)


class FaultPlan:
    """A seeded stream of :class:`FaultDecision` values.

    One :meth:`decide` call consumes exactly one PRNG roll (plus one for
    the latency magnitude when a LATENCY fault fires), so the decision
    sequence is a pure function of ``(rates, seed)`` and the number of
    prior calls. ``counts`` keeps the per-kind totals for reporting and
    for the channel's ``channel_faults_injected_total`` mirror.
    """

    __slots__ = ("rates", "seed", "latency_s", "_rng", "_thresholds", "counts")

    def __init__(
        self,
        rates: FaultRates,
        seed: int = 0,
        latency_s: float = 0.005,
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        self.rates = rates
        self.seed = seed
        self.latency_s = latency_s
        self._rng = random.Random(seed)
        self._thresholds = rates.thresholds()
        self.counts: dict[FaultKind, int] = {kind: 0 for kind in FaultKind}

    @classmethod
    def lossless(cls, seed: int = 0) -> "FaultPlan":
        """A plan that never injects anything (still deterministic)."""
        return cls(FaultRates(), seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """The same rate on all four fault kinds."""
        return cls(
            FaultRates(drop=rate, error=rate, latency=rate, duplicate=rate),
            seed=seed,
        )

    def decide(self) -> FaultDecision:
        """The fate of the next delivery attempt."""
        roll = self._rng.random()
        kind = FaultKind.DELIVER
        for threshold, candidate in zip(self._thresholds, FAULT_KINDS):
            if roll < threshold:
                kind = candidate
                break
        self.counts[kind] += 1
        if kind is FaultKind.LATENCY:
            return FaultDecision(kind, delay_s=self._rng.random() * self.latency_s)
        return FaultDecision(kind)

    @property
    def decisions(self) -> int:
        """Total attempts adjudicated so far."""
        return sum(self.counts.values())

    @property
    def injected(self) -> int:
        """Attempts that did not deliver cleanly."""
        return self.decisions - self.counts[FaultKind.DELIVER]

    def summary(self) -> dict[str, int]:
        """Per-kind decision counts keyed by the kind value."""
        return {kind.value: count for kind, count in self.counts.items()}

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, drop={self.rates.drop}, "
            f"error={self.rates.error}, latency={self.rates.latency}, "
            f"duplicate={self.rates.duplicate})"
        )
