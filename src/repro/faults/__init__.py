"""Fault injection for the download path (see docs/RESILIENCE.md)."""

from repro.faults.clock import AsyncVirtualClock, VirtualClock
from repro.faults.plan import (
    FAULT_KINDS,
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultRates,
)

__all__ = [
    "AsyncVirtualClock",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultRates",
    "VirtualClock",
]
