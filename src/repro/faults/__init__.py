"""Fault injection for the download path (see docs/RESILIENCE.md)."""

from repro.faults.clock import VirtualClock
from repro.faults.plan import (
    FAULT_KINDS,
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultRates,
)

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultRates",
    "VirtualClock",
]
