"""A controllable clock for driving retry/backoff logic in tests.

The repo's injected-clock seam (:class:`~repro.core.manager.
SmaltaManager`, :class:`~repro.obs.observability.Observability`) takes a
plain ``Callable[[], float]``. :class:`VirtualClock` is that callable
plus the two verbs resilience code needs: ``sleep`` (advance time, as a
backoff wait would) and ``advance`` (move time from the outside). The
:class:`~repro.router.channel.DownloadChannel` accepts the clock and the
sleep separately, so a test can pass ``clock=vc, sleep=vc.sleep`` and
read the exact backoff schedule off ``vc.sleeps``.
"""

from __future__ import annotations


class VirtualClock:
    """Deterministic time: advances only when told to."""

    __slots__ = ("_now", "sleeps")

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        #: Every sleep duration requested, in order (the backoff trace).
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Record and apply one wait (the channel's backoff seam)."""
        self.sleeps.append(seconds)
        self.advance(seconds)


class AsyncVirtualClock(VirtualClock):
    """A :class:`VirtualClock` whose sleep cooperates with an event loop.

    Awaiting :meth:`sleep_async` advances *virtual* time instantly but
    still yields control to the loop once (``asyncio.sleep(0)``), so
    other coroutines interleave exactly as they would under real waits —
    a daemon soak finishes in milliseconds of wall-clock while the
    schedule it exercises is the real one. The instance remains a plain
    ``Callable[[], float]``, so it plugs into every existing clock seam
    (manager, observability, channel) unchanged.
    """

    async def sleep_async(self, seconds: float) -> None:
        """Record and apply one wait, then yield to the event loop."""
        import asyncio

        self.sleeps.append(seconds)
        self.advance(seconds)
        await asyncio.sleep(0)
