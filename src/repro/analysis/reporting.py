"""Plain-text table and series formatting for the experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_percent(value: float, decimals: int = 1) -> str:
    return f"{value:.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A boxless aligned ASCII table (numbers right-aligned)."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
        cells.append([_render(cell) for cell in row])
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(cells[0]))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[object, object]], unit: str = ""
) -> str:
    """A one-line-per-point rendering of a figure series."""
    lines = [f"{name}:"]
    for x, y in points:
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {_render(x):>10} -> {_render(y)}{suffix}")
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:,.3f}" if abs(cell) < 100 else f"{cell:,.1f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("%", "")
    return stripped.lstrip("-").isdigit() if stripped else False
