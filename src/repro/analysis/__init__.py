"""Measurement and reporting helpers shared by the experiments."""

from repro.analysis.metrics import (
    FibMetrics,
    aggregation_percent,
    fib_metrics,
    table_effective_nexthops,
)
from repro.analysis.reporting import format_percent, format_table

__all__ = [
    "FibMetrics",
    "aggregation_percent",
    "fib_metrics",
    "format_percent",
    "format_table",
    "table_effective_nexthops",
]
