"""FIB metrics: the #(·), M(·), T(·) triple every table in the paper reports.

- #(·): number of table entries,
- M(·): Tree Bitmap memory in bytes (Section 4.2's configuration),
- T(·): expected memory accesses per lookup, uniform traffic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.fib.lookup_stats import (
    average_lookup_accesses,
    entry_weighted_lookup_accesses,
)
from repro.fib.memory import MemoryModel, PAPER_MODEL, tbm_memory_bytes
from repro.fib.treebitmap import TreeBitmap
from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix
from repro.workloads.distributions import effective_nexthops


@dataclass(frozen=True)
class FibMetrics:
    """One table's FIB cost triple (plus the per-entry T variant).

    ``avg_accesses`` is the paper's T(·): expected memory accesses with
    every address in the covered space equally likely. ``entry_accesses``
    weights each route equally instead (useful when route popularity,
    not address mass, drives traffic).
    """

    entries: int
    memory_bytes: int
    avg_accesses: float
    entry_accesses: float = 0.0

    def as_percent_of(self, other: "FibMetrics") -> tuple[float, float, float]:
        """(#%, M%, T%) relative to ``other`` (the paper's percent rows)."""
        return (
            100.0 * self.entries / other.entries if other.entries else 0.0,
            100.0 * self.memory_bytes / other.memory_bytes
            if other.memory_bytes
            else 0.0,
            100.0 * self.avg_accesses / other.avg_accesses
            if other.avg_accesses
            else 0.0,
        )


def fib_metrics(
    table: Mapping[Prefix, Nexthop],
    width: int = 32,
    initial_stride: int = 12,
    stride: int = 4,
    model: MemoryModel = PAPER_MODEL,
) -> FibMetrics:
    """Build the Tree Bitmap for ``table`` and measure the triple."""
    fib = TreeBitmap.from_table(
        table, width=width, initial_stride=initial_stride, stride=stride
    )
    return FibMetrics(
        entries=len(table),
        memory_bytes=tbm_memory_bytes(fib, model),
        avg_accesses=average_lookup_accesses(fib),
        entry_accesses=entry_weighted_lookup_accesses(fib),
    )


def aggregation_percent(aggregated_entries: int, original_entries: int) -> float:
    """#(AT) as a percent of #(OT) — the paper's efficiency measure."""
    if original_entries == 0:
        return 0.0
    return 100.0 * aggregated_entries / original_entries


def table_effective_nexthops(table: Mapping[Prefix, Nexthop]) -> float:
    """E(R) of a prefix table (Section 4.3's entropy formula)."""
    counts = Counter(table.values())
    return effective_nexthops(list(counts.values()))
