"""Entropy machinery: effective nexthop counts and skewed assignments.

Section 4.3 explains AR-1's outsized aggregation with the *effective
number of nexthops*::

    log2 E(R) = Σ −p_i · log2 p_i,   p_i = n_i / Σ n_j

where n_i is the number of prefixes assigned to the i-th nexthop. This
module computes E(R) and, inversely, constructs prefix-per-nexthop count
vectors achieving a target E(R) — which is how the synthetic AR tables
match the paper's Table 1 row for each router.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.net.nexthop import Nexthop


def entropy_bits(counts: Sequence[float]) -> float:
    """Shannon entropy (bits) of a count vector (zeros are ignored)."""
    total = float(sum(counts))
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def effective_nexthops(counts: Sequence[float]) -> float:
    """E(R) = 2**entropy — the paper's effective number of nexthops."""
    return 2.0 ** entropy_bits(counts)


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Normalized Zipf weights w_i ∝ (i+1)**-exponent."""
    if count < 1:
        raise ValueError("count must be >= 1")
    raw = [(i + 1) ** -exponent for i in range(count)]
    total = sum(raw)
    return [w / total for w in raw]


def _effective_of_exponent(count: int, exponent: float) -> float:
    return effective_nexthops(zipf_weights(count, exponent))


def zipf_exponent_for_effective(count: int, target: float) -> float:
    """The Zipf exponent whose weight vector has E(R) ≈ target.

    E is monotonically decreasing in the exponent: 0 → E = count (uniform),
    ∞ → E = 1. Binary search suffices.
    """
    if not 1.0 <= target <= count + 1e-9:
        raise ValueError(f"target E(R) {target} outside [1, {count}]")
    lo, hi = 0.0, 1.0
    while _effective_of_exponent(count, hi) > target and hi < 64:
        hi *= 2
    for _ in range(80):
        mid = (lo + hi) / 2
        if _effective_of_exponent(count, mid) > target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def counts_for_effective(
    total: int, nexthop_count: int, target_effective: float
) -> list[int]:
    """An integer count vector summing to ``total`` with E(R) ≈ target.

    Every nexthop receives at least one prefix when possible (Table 1's
    routers have many nexthops that each serve "only a couple of
    prefixes").
    """
    if nexthop_count < 1:
        raise ValueError("need at least one nexthop")
    if total < nexthop_count:
        # Not enough prefixes to populate every nexthop; spread what we have.
        return [1] * total + [0] * (nexthop_count - total)
    exponent = zipf_exponent_for_effective(nexthop_count, target_effective)
    weights = zipf_weights(nexthop_count, exponent)
    counts = [max(1, int(w * total)) for w in weights]
    # Fix the rounding drift on the largest bucket.
    counts[0] += total - sum(counts)
    if counts[0] < 1:
        raise ValueError("target effective nexthops infeasible for this total")
    return counts


def assign_skewed_nexthops(
    prefix_count: int,
    nexthops: Sequence[Nexthop],
    target_effective: float,
    rng: random.Random,
) -> list[Nexthop]:
    """A nexthop per prefix index, shuffled, with E(R) ≈ target overall."""
    counts = counts_for_effective(prefix_count, len(nexthops), target_effective)
    assignment = [
        nexthop for nexthop, count in zip(nexthops, counts) for _ in range(count)
    ]
    rng.shuffle(assignment)
    return assignment
