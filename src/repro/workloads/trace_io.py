"""On-disk formats for tables and update traces.

Line-oriented text, diff-friendly and trivially greppable::

    # table lines
    T 10.0.0.0/8 nh3
    # trace lines
    A 12.500 10.1.0.0/16 nh2      (announce: time, prefix, nexthop)
    W 13.125 10.1.0.0/16          (withdraw: time, prefix)

Nexthops are resolved through a :class:`~repro.net.nexthop.NexthopRegistry`,
creating them on first sight so traces are self-contained.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.net.nexthop import Nexthop, NexthopRegistry
from repro.net.prefix import Prefix
from repro.net.update import RouteUpdate, UpdateKind, UpdateTrace

PathLike = Union[str, Path]


def save_table(table: dict[Prefix, Nexthop], path: PathLike) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for prefix, nexthop in sorted(table.items()):
            handle.write(f"T {prefix} {nexthop}\n")


def load_table(
    path: PathLike, registry: NexthopRegistry | None = None
) -> tuple[dict[Prefix, Nexthop], NexthopRegistry]:
    registry = registry if registry is not None else NexthopRegistry()
    table: dict[Prefix, Nexthop] = {}
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] != "T":
                raise ValueError(f"{path}:{line_number}: bad table line {line!r}")
            table[Prefix.from_string(parts[1])] = _resolve(registry, parts[2])
    return table, registry


def save_trace(trace: UpdateTrace, path: PathLike) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# trace {trace.name}\n")
        for update in trace:
            if update.kind is UpdateKind.ANNOUNCE:
                handle.write(
                    f"A {update.timestamp:.6f} {update.prefix} {update.nexthop}\n"
                )
            else:
                handle.write(f"W {update.timestamp:.6f} {update.prefix}\n")


def load_trace(
    path: PathLike, registry: NexthopRegistry | None = None
) -> tuple[UpdateTrace, NexthopRegistry]:
    registry = registry if registry is not None else NexthopRegistry()
    trace = UpdateTrace(name=Path(path).stem)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "A" and len(parts) == 4:
                trace.append(
                    RouteUpdate.announce(
                        Prefix.from_string(parts[2]),
                        _resolve(registry, parts[3]),
                        float(parts[1]),
                    )
                )
            elif parts[0] == "W" and len(parts) == 3:
                trace.append(
                    RouteUpdate.withdraw(Prefix.from_string(parts[2]), float(parts[1]))
                )
            else:
                raise ValueError(f"{path}:{line_number}: bad trace line {line!r}")
    return trace, registry


def _resolve(registry: NexthopRegistry, name: str) -> Nexthop:
    try:
        return registry.by_name(name)
    except KeyError:
        return registry.create(name)
