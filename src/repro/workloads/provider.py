"""Tier-1 provider analogues: the AR and IGR scenarios of Tables 1 and 2.

**Substitution note (see DESIGN.md):** the paper's provider FIB snapshots
and iBGP traces are proprietary. These builders synthesize tables whose
published statistics match Table 1 / Table 2 — table size, number of IGP
nexthops #NH, and effective nexthop count E(·) — scaled by REPRO_SCALE.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.nexthop import Nexthop, NexthopRegistry
from repro.net.prefix import Prefix
from repro.net.update import UpdateTrace
from repro.workloads.scale import scaled
from repro.workloads.synthetic_table import TableProfile, generate_table
from repro.workloads.synthetic_updates import generate_update_trace


@dataclass(frozen=True)
class AccessRouterProfile:
    """One Table 1 access router."""

    name: str
    nexthop_count: int  # #NH
    effective_nexthops: float  # E(·)
    table_size: int  # #(OT), paper scale


#: The five ARs of Table 1.
AR_PROFILES: tuple[AccessRouterProfile, ...] = (
    AccessRouterProfile("AR-1", 89, 1.061, 427_205),
    AccessRouterProfile("AR-2", 419, 1.766, 426_175),
    AccessRouterProfile("AR-3", 25, 1.845, 426_736),
    AccessRouterProfile("AR-4", 9, 2.01, 427_520),
    AccessRouterProfile("AR-5", 652, 3.164, 428_766),
)


@dataclass(frozen=True)
class IgrProfile:
    """The Table 2 / Figures 8 & 10 internet gateway router."""

    name: str = "IGR-1"
    nexthop_count: int = 8
    table_size: int = 418_033
    update_count: int = 183_719
    trace_hours: float = 12.0


IGR_PROFILE = IgrProfile()


def build_access_router_table(
    profile: AccessRouterProfile,
    rng: random.Random,
    registry: NexthopRegistry | None = None,
) -> tuple[dict[Prefix, Nexthop], list[Nexthop]]:
    """A synthetic FIB snapshot for one AR (scaled), plus its nexthops."""
    registry = registry if registry is not None else NexthopRegistry()
    nexthops = registry.create_many(profile.nexthop_count, prefix=f"{profile.name}-nh")
    size = scaled(profile.table_size, minimum=50)
    table = generate_table(
        size,
        nexthops,
        rng,
        target_effective=profile.effective_nexthops,
        profile=TableProfile(),
    )
    return table, nexthops


def build_igr_scenario(
    rng: random.Random,
    profile: IgrProfile = IGR_PROFILE,
    registry: NexthopRegistry | None = None,
) -> tuple[dict[Prefix, Nexthop], UpdateTrace, list[Nexthop]]:
    """The IGR-1 snapshot plus its 12-hour update trace (scaled)."""
    registry = registry if registry is not None else NexthopRegistry()
    nexthops = registry.create_many(profile.nexthop_count, prefix="igr-nh")
    size = scaled(profile.table_size, minimum=100)
    updates = scaled(profile.update_count, minimum=100)
    table = generate_table(size, nexthops, rng, target_effective=None)
    trace = generate_update_trace(
        table,
        updates,
        nexthops,
        rng,
        duration_s=profile.trace_hours * 3600.0,
        name=f"{profile.name}-trace",
    )
    return table, trace, nexthops
