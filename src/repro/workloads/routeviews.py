"""RouteViews analogues: multi-peer feeds, best-path, and IGP mapping.

**Substitution note (see DESIGN.md):** the paper mimics "a router with a
number of eBGP peers, one per routeviews feed", applies a simple
best-path policy, and maps peers onto k IGP nexthops round-robin
(Section 4.1.2). We synthesize the same construction: a base table (the
DFZ), per-peer views that each cover most of it, a deterministic
best-path choice per prefix, and the round-robin peer→IGP mapping that
Figure 6 sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.net.nexthop import Nexthop, NexthopRegistry, RoundRobinIgpMapper
from repro.net.prefix import Prefix
from repro.net.update import UpdateTrace
from repro.workloads.scale import scaled
from repro.workloads.synthetic_table import generate_table
from repro.workloads.synthetic_updates import generate_update_trace

#: December-15 RIB sizes per year (paper: "first RIB data file on
#: December 15 for each year from 2001 to 2010"). 2006 matches the
#: 220,821 prefixes reported under Figure 6; other years follow DFZ
#: growth.
ROUTEVIEWS_TABLE_SIZES: dict[int, int] = {
    2001: 104_000,
    2002: 117_000,
    2003: 130_000,
    2004: 150_000,
    2005: 176_000,
    2006: 220_821,
    2007: 244_000,
    2008: 275_000,
    2009: 305_000,
    2010: 340_000,
}

#: Number of RouteViews feeds in 2006 (paper: "48, the total number of
#: BGP nexthops for the routeviews collection in 2006").
PEER_COUNT_2006 = 48


@dataclass
class DumpStats:
    """What :func:`load_routeviews_dump` saw while parsing one file."""

    #: Total lines read, comments and blanks included.
    lines: int = 0
    #: Routes installed in the table (first line per prefix wins).
    routes: int = 0
    #: Later routes for an already-seen prefix (RIB dumps carry one line
    #: per peer; the best path is printed first).
    duplicates: int = 0
    #: Malformed lines tolerated by ``strict=False``.
    skipped: int = 0
    #: ``(line_number, reason)`` for every skipped line, in file order.
    skipped_lines: list[tuple[int, str]] = field(default_factory=list)


def _parse_dump_line(line: str) -> tuple[str, str]:
    """``(prefix_text, nexthop_name)`` from one dump line.

    Two shapes are accepted:

    - ``bgpdump -m`` pipe format (real RouteViews RIBs)::

        TABLE_DUMP2|1142294400|B|12.0.1.63|7018|10.0.0.0/8|7018 3356|IGP|12.123.1.236|...

      — the prefix is field 5, the BGP nexthop field 8;
    - plain whitespace pairs (``10.0.0.0/8 peer3``), the repo's own
      table shorthand.

    Raises :class:`ValueError` with a reason (no line number — the
    caller owns file context) for anything else, *including* truncated
    pipe lines, which otherwise surface as index errors mid-parse.
    """
    if "|" in line:
        parts = line.split("|")
        if parts[0] not in ("TABLE_DUMP", "TABLE_DUMP2"):
            raise ValueError(f"unknown MRT record type {parts[0]!r}")
        if len(parts) < 9:
            raise ValueError(
                f"truncated MRT line: {len(parts)} fields, need at least 9"
            )
        if parts[2] != "B":
            raise ValueError(f"not a RIB entry (subtype {parts[2]!r})")
        prefix_text, nexthop_name = parts[5], parts[8]
    else:
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(
                f"expected 'prefix nexthop', got {len(parts)} fields"
            )
        prefix_text, nexthop_name = parts
    if not nexthop_name:
        raise ValueError("empty nexthop field")
    return prefix_text, nexthop_name


def load_routeviews_dump(
    path: Union[str, Path],
    registry: NexthopRegistry | None = None,
    *,
    strict: bool = True,
) -> tuple[dict[Prefix, Nexthop], NexthopRegistry, DumpStats]:
    """Parse a RouteViews table dump into a best-path table.

    One line per (peer, prefix) route; the first route seen for a prefix
    wins (RouteViews RIB walkers print the best path first), later ones
    count as :attr:`DumpStats.duplicates`. Malformed or truncated lines
    raise one :class:`ValueError` naming the file, line number, and
    offending text; with ``strict=False`` they are skipped and counted
    in :attr:`DumpStats.skipped` / :attr:`DumpStats.skipped_lines`
    instead. Nexthops are interned through ``registry`` (created fresh
    when not given), so the table is self-contained like
    :func:`~repro.workloads.trace_io.load_table`'s.
    """
    registry = registry if registry is not None else NexthopRegistry()
    table: dict[Prefix, Nexthop] = {}
    stats = DumpStats()
    with open(path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, 1):
            stats.lines += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                prefix_text, nexthop_name = _parse_dump_line(line)
                prefix = Prefix.from_string(prefix_text)
            except ValueError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_number}: bad routeviews line "
                        f"{line!r}: {exc}"
                    ) from None
                stats.skipped += 1
                stats.skipped_lines.append((line_number, str(exc)))
                continue
            if prefix in table:
                stats.duplicates += 1
                continue
            try:
                nexthop = registry.by_name(nexthop_name)
            except KeyError:
                nexthop = registry.create(nexthop_name)
            table[prefix] = nexthop
            stats.routes += 1
    return table, registry, stats


@dataclass
class RouteViewsScenario:
    """A synthesized RouteViews router: table keyed by *peer* (BGP
    nexthop), plus machinery to re-key it by IGP nexthop."""

    year: int
    peers: list[Nexthop]
    table_by_peer: dict[Prefix, Nexthop]
    registry: NexthopRegistry
    trace_by_peer: UpdateTrace = field(default_factory=UpdateTrace)

    def with_igp_nexthops(
        self, igp_count: int
    ) -> tuple[dict[Prefix, Nexthop], list[Nexthop]]:
        """The FIB table after mapping peers round-robin onto ``igp_count``
        IGP nexthops — the Figure 6 sweep variable."""
        igp = [
            Nexthop(10_000 + i, f"igp{self.year}-{igp_count}-{i}")
            for i in range(igp_count)
        ]
        mapper = RoundRobinIgpMapper(igp)
        # Deterministic order: peers are assigned in key order.
        for peer in self.peers:
            mapper.map(peer)
        table = {
            prefix: mapper.map(peer) for prefix, peer in self.table_by_peer.items()
        }
        return table, igp

    def igp_trace(self, igp_count: int) -> UpdateTrace:
        """The update trace with nexthops mapped like the table's."""
        igp = [
            Nexthop(10_000 + i, f"igp{self.year}-{igp_count}-{i}")
            for i in range(igp_count)
        ]
        mapper = RoundRobinIgpMapper(igp)
        for peer in self.peers:
            mapper.map(peer)
        from repro.net.update import RouteUpdate, UpdateKind

        mapped = UpdateTrace(name=f"{self.trace_by_peer.name}-igp{igp_count}")
        for update in self.trace_by_peer:
            if update.kind is UpdateKind.ANNOUNCE:
                assert update.nexthop is not None
                mapped.append(
                    RouteUpdate.announce(
                        update.prefix, mapper.map(update.nexthop), update.timestamp
                    )
                )
            else:
                mapped.append(update)
        return mapped


def build_routeviews_scenario(
    year: int,
    rng: random.Random,
    peer_count: int = PEER_COUNT_2006,
    update_count: int | None = None,
    duration_s: float = 24 * 3600.0,
) -> RouteViewsScenario:
    """Synthesize the RouteViews router for ``year`` (scaled).

    The best-path process is modeled directly: each prefix's winning peer
    is the generator's skew-and-locality assignment (real best paths are
    also spatially clustered because peers win whole allocation blocks).
    """
    if year not in ROUTEVIEWS_TABLE_SIZES:
        raise ValueError(
            f"no table size for {year}; choose one of "
            f"{sorted(ROUTEVIEWS_TABLE_SIZES)}"
        )
    registry = NexthopRegistry()
    peers = registry.create_many(peer_count, prefix=f"peer{year}-")
    size = scaled(ROUTEVIEWS_TABLE_SIZES[year], minimum=100)
    table = generate_table(size, peers, rng, target_effective=None)
    scenario = RouteViewsScenario(
        year=year, peers=peers, table_by_peer=table, registry=registry
    )
    if update_count is not None:
        scenario.trace_by_peer = generate_update_trace(
            table,
            scaled(update_count, minimum=50),
            peers,
            rng,
            duration_s=duration_s,
            name=f"routeviews-{year}",
        )
    return scenario
