"""Synthetic routing-table generator calibrated to 2011 DFZ statistics.

Real BGP tables have three properties FIB aggregation depends on:

1. a prefix-length mix dominated by /24s (~53% in 2011), with secondary
   mass at /19–/23 and /16;
2. *spatial structure*: announcements come in runs of consecutive
   prefixes from the same allocation block, often under a covering
   less-specific (traffic-engineering more-specifics);
3. *nexthop locality*: prefixes from one origin tend to resolve to the
   same IGP nexthop, with an overall skewed prefix-per-nexthop
   distribution (the paper's E(R)).

The generator produces clusters of consecutive prefixes (geometric run
lengths), optionally nested under covering prefixes, then assigns
nexthops in address-order runs drawn from a count vector matching a
target effective-nexthop value.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix
from repro.workloads.distributions import counts_for_effective

#: Approximate 2011 default-free-zone prefix-length shares.
DFZ_LENGTH_SHARES: dict[int, float] = {
    8: 0.0005,
    9: 0.0002,
    10: 0.0004,
    11: 0.001,
    12: 0.0025,
    13: 0.0035,
    14: 0.0055,
    15: 0.008,
    16: 0.060,
    17: 0.020,
    18: 0.035,
    19: 0.060,
    20: 0.065,
    21: 0.055,
    22: 0.085,
    23: 0.070,
    24: 0.528,
}


@dataclass(frozen=True)
class TableProfile:
    """Tunables of the synthetic table generator."""

    width: int = 32
    #: Mean length of a run of consecutive same-length prefixes.
    mean_run: float = 8.0
    #: Probability a cluster of specifics also announces a covering prefix.
    nesting_probability: float = 0.5
    #: Mean length of an address-order run sharing one nexthop.
    mean_nexthop_run: float = 40.0
    #: Probability a slot inside a run is interrupted by a stray nexthop —
    #: the A‑B‑A pattern of Figure 2 that ORTC aggregates across but the
    #: sibling-merging L2 cannot.
    nexthop_noise: float = 0.25
    #: Probability a covering prefix routes independently of the specifics
    #: beneath it (traffic-engineering deaggregation) — this is what
    #: separates ORTC-style aggregation from plain sibling merging.
    cover_shuffle: float = 0.3
    #: Fraction of the first-octet space that is "allocated" (announcements
    #: cluster inside allocated ranges; the rest stays unrouted, like the
    #: unallocated /8 blocks of the real IPv4 space). None (the default)
    #: scales the fraction with the table size so that *coverage density
    #: inside allocated space* matches a real ~420k-prefix table — without
    #: this, REPRO_SCALE-reduced tables would be unrealistically sparse
    #: and aggregation could never produce short covering prefixes.
    allocated_fraction: Optional[float] = None
    #: Number of contiguous allocated first-octet runs.
    allocated_runs: int = 10
    #: Prefix-length → share; defaults to the DFZ mix (clipped to width).
    length_shares: dict[int, float] = field(
        default_factory=lambda: dict(DFZ_LENGTH_SHARES)
    )

    def clipped_lengths(self) -> tuple[list[int], list[float]]:
        lengths: dict[int, float] = {}
        for length, share in self.length_shares.items():
            clipped = min(length, self.width)
            if clipped >= 1:
                lengths[clipped] = lengths.get(clipped, 0.0) + share
        items = sorted(lengths.items())
        return [l for l, _ in items], [s for _, s in items]


def _geometric(rng: random.Random, mean: float) -> int:
    """A geometric draw with the given mean, at least 1."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    count = 1
    while rng.random() > p:
        count += 1
    return count


def _space_fraction(profile: TableProfile, prefix_count: int) -> float:
    """The allocated fraction of the first-octet space for this table."""
    if profile.allocated_fraction is not None:
        return profile.allocated_fraction
    # ~420k prefixes covered ~60% of the first-octet space in 2011;
    # scale linearly so per-/8 announcement density stays realistic.
    return min(0.87, max(0.02, 0.6 * prefix_count / 420_000))


def _short_length_shift(profile: TableProfile, prefix_count: int) -> int:
    """How far to lengthen sub-/16 prefixes on scaled-down tables.

    When the allocated space shrinks by 2**k, a paper-scale /8 should
    become a /(8+k) so that the *fraction of covered space* under short
    prefixes — which dominates the covered-traffic lookup cost T(·) —
    stays realistic. Zero at full scale or when the caller pinned the
    allocated fraction explicitly.
    """
    if profile.allocated_fraction is not None or profile.width != 32:
        return 0
    fraction = _space_fraction(profile, prefix_count)
    return max(0, round(math.log2(0.6 / fraction)))


def _allocated_octets(
    rng: random.Random, profile: TableProfile, prefix_count: int
) -> list[int]:
    """Contiguous runs of "allocated" first octets within 1..223."""
    fraction = _space_fraction(profile, prefix_count)
    total = max(1, int(223 * fraction))
    runs = max(1, min(profile.allocated_runs, total))
    base_len, extra = divmod(total, runs)
    octets: set[int] = set()
    attempts = 0
    while len(octets) < total and attempts < 1000:
        attempts += 1
        run_len = base_len + (1 if extra > 0 else 0)
        start = rng.randrange(1, max(2, 224 - run_len))
        octets.update(range(start, min(start + run_len, 224)))
        if extra > 0:
            extra -= 1
    return sorted(octets)


def _random_aligned_value(
    rng: random.Random, length: int, width: int, octets: Optional[list[int]] = None
) -> int:
    """A random prefix value; for IPv4 widths, confined to allocated space."""
    if length == 0:
        return 0
    top = rng.getrandbits(length)
    if width == 32:
        if length >= 8:
            first = rng.choice(octets) if octets else rng.randrange(1, 224)
            top = (first << (length - 8)) | (
                rng.getrandbits(length - 8) if length > 8 else 0
            )
        else:
            # Short prefixes: keep out of 0/8 at least.
            if top == 0:
                top = 1
    return top << (width - length)


def generate_table(
    prefix_count: int,
    nexthops: Sequence[Nexthop],
    rng: random.Random,
    target_effective: Optional[float] = None,
    profile: Optional[TableProfile] = None,
) -> dict[Prefix, Nexthop]:
    """A synthetic table with ``prefix_count`` entries over ``nexthops``.

    ``target_effective`` sets the desired E(R); None means uniform
    (E ≈ number of nexthops).
    """
    if prefix_count < 0:
        raise ValueError("prefix_count must be >= 0")
    if not nexthops:
        raise ValueError("need at least one nexthop")
    profile = profile or TableProfile()
    prefixes, covers = _generate_structure(prefix_count, rng, profile)
    if target_effective is None:
        target_effective = float(len(nexthops))
    assignment = _assign_in_runs(
        len(prefixes),
        list(nexthops),
        target_effective,
        profile.mean_nexthop_run,
        rng,
        noise=profile.nexthop_noise,
    )
    ordered = sorted(prefixes)  # address order → nexthop runs are spatial
    table = dict(zip(ordered, assignment))
    # Covering prefixes frequently route independently of their specifics.
    if assignment:
        tallies = Counter(assignment)
        pool = list(nexthops)
        weights = [tallies.get(nh, 0) + 1 for nh in pool]
        for cover in covers:
            if cover in table and rng.random() < profile.cover_shuffle:
                table[cover] = rng.choices(pool, weights=weights)[0]
    return table


def _generate_structure(
    prefix_count: int, rng: random.Random, profile: TableProfile
) -> tuple[set[Prefix], set[Prefix]]:
    lengths, shares = profile.clipped_lengths()
    width = profile.width
    shift = _short_length_shift(profile, prefix_count)
    if shift:
        remapped: dict[int, float] = {}
        for length, share in zip(lengths, shares):
            key = min(15, length + shift) if length < 16 else length
            remapped[key] = remapped.get(key, 0.0) + share
        items = sorted(remapped.items())
        lengths = [l for l, _ in items]
        shares = [s for _, s in items]
    prefixes: set[Prefix] = set()
    covers: set[Prefix] = set()
    octets = _allocated_octets(rng, profile, prefix_count) if width == 32 else None
    while len(prefixes) < prefix_count:
        length = rng.choices(lengths, weights=shares)[0]
        run = _geometric(rng, profile.mean_run if length >= 18 else 1.5)
        base = _random_aligned_value(rng, length, width, octets)
        step = 1 << (width - length)
        for i in range(run):
            if len(prefixes) >= prefix_count:
                break
            value = base + i * step
            if value >= (1 << width):
                break
            prefixes.add(Prefix(value - (value % step), length, width))
        # Sometimes the specifics sit under an announced covering prefix.
        if (
            length >= 4
            and len(prefixes) < prefix_count
            and rng.random() < profile.nesting_probability
        ):
            cover_length = max(1, length - rng.randint(2, min(6, length)))
            cover_step = 1 << (width - cover_length)
            cover = Prefix(base - (base % cover_step), cover_length, width)
            prefixes.add(cover)
            covers.add(cover)
    return prefixes, covers


def _assign_in_runs(
    count: int,
    nexthops: list[Nexthop],
    target_effective: float,
    mean_run: float,
    rng: random.Random,
    noise: float = 0.0,
) -> list[Nexthop]:
    """Deal nexthops to address-ordered slots in geometric runs, honouring
    a per-nexthop quota that realizes the target E(R). ``noise`` injects
    single-slot interruptions inside runs (Figure 2's A-B-A shape)."""
    if count == 0:
        return []
    target = min(target_effective, float(len(nexthops)))
    quotas = counts_for_effective(count, len(nexthops), target)
    pool = [(nexthop, quota) for nexthop, quota in zip(nexthops, quotas) if quota > 0]
    remaining = dict(pool)
    order = [nexthop for nexthop, _ in pool]
    result: list[Nexthop] = []
    while len(result) < count:
        live = [nh for nh in order if remaining[nh] > 0]
        weights = [remaining[nh] for nh in live]
        choice = rng.choices(live, weights=weights)[0]
        run = min(_geometric(rng, mean_run), remaining[choice], count - len(result))
        for _ in range(run):
            slot = choice
            if noise and len(live) > 1 and rng.random() < noise:
                # Strays are drawn uniformly: with a skewed quota a
                # weighted draw would almost always return the dominant
                # nexthop again, producing no interruption at all.
                stray = rng.choice(live)
                if remaining[stray] > 0:
                    slot = stray
            if remaining[slot] <= 0:
                slot = choice
            result.append(slot)
            remaining[slot] -= 1
            if remaining[choice] <= 0:
                break
    return result
