"""Synthetic BGP update traces with realistic churn structure.

The paper's IGR-1 trace: 183,719 best-path updates over 12 hours against
a ~418k-prefix table, during which the table size moved by less than
0.1% (Figure 8, right axis). Real churn is dominated by a small set of
unstable prefixes (heavy-tailed flap popularity), and consists of
withdraw/re-announce flaps, nexthop (path) changes, and a trickle of
genuinely new or retired prefixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.net.nexthop import Nexthop
from repro.net.prefix import Prefix
from repro.net.update import RouteUpdate, UpdateTrace
from repro.workloads.distributions import zipf_weights


@dataclass(frozen=True)
class UpdateMix:
    """Shares of the update-event types (normalized at use).

    ``duplicate`` models re-announcements whose attributes changed but
    whose best-path nexthop did not — a large share of real iBGP churn
    and the reason the paper sees only ~0.63 FIB downloads per update.
    """

    flap: float = 0.30  # withdraw followed by re-announce (2 updates)
    path_change: float = 0.25  # announce with a different nexthop
    duplicate: float = 0.35  # re-announce with the same nexthop (FIB no-op)
    new_prefix: float = 0.05  # announce of a brand-new prefix
    retire_prefix: float = 0.05  # permanent withdraw

    def normalized(self) -> tuple[float, float, float, float, float]:
        total = (
            self.flap
            + self.path_change
            + self.duplicate
            + self.new_prefix
            + self.retire_prefix
        )
        if total <= 0:
            raise ValueError("update mix must have positive mass")
        return (
            self.flap / total,
            self.path_change / total,
            self.duplicate / total,
            self.new_prefix / total,
            self.retire_prefix / total,
        )


def generate_update_trace(
    table: dict[Prefix, Nexthop],
    update_count: int,
    nexthops: Sequence[Nexthop],
    rng: random.Random,
    mix: UpdateMix | None = None,
    duration_s: float = 12 * 3600.0,
    flappy_fraction: float = 0.08,
    popularity_exponent: float = 1.1,
    name: str = "synthetic-updates",
) -> UpdateTrace:
    """A trace of ``update_count`` updates consistent with ``table``.

    The trace is *replayable*: withdraws only target currently-announced
    prefixes, re-announces restore flapped prefixes, and the live table
    size stays within a fraction of a percent of the original
    (new-prefix and retire events are balanced).

    ``table`` is not modified; the caller replays the trace against its
    own copy.
    """
    if update_count < 0:
        raise ValueError("update_count must be >= 0")
    if not table and update_count:
        raise ValueError("cannot generate updates against an empty table")
    mix = mix or UpdateMix()
    flap_share, change_share, duplicate_share, new_share, _ = mix.normalized()

    live: dict[Prefix, Nexthop] = dict(table)
    width = next(iter(table)).width if table else 32

    # Heavy-tailed flap population: a small set of prefixes gets most of
    # the churn, with Zipf popularity.
    population = list(live)
    rng.shuffle(population)
    flappy_count = max(1, int(len(population) * flappy_fraction))
    flappy = population[:flappy_count]
    weights = zipf_weights(flappy_count, popularity_exponent)
    # Real path changes flip between a primary and a (stable) backup path,
    # they do not draw uniform-random nexthops — that would steadily
    # destroy the table's aggregatability, which Figures 8/9 show stays
    # intact. Each churning prefix gets one fixed alternate nexthop.
    nexthop_pool = list(nexthops)
    alternates: dict[Prefix, Nexthop] = {}

    def alternate_for(prefix: Prefix) -> Nexthop:
        alternate = alternates.get(prefix)
        if alternate is None:
            alternate = rng.choice(nexthop_pool)
            alternates[prefix] = alternate
        return alternate

    trace = UpdateTrace(name=name)
    timestamp = 0.0
    mean_gap = duration_s / max(1, update_count)
    withdrawn: list[tuple[Prefix, Nexthop]] = []
    created = 0
    retired = 0

    def tick() -> float:
        nonlocal timestamp
        # Bursty arrivals: exponential gaps, occasionally compressed.
        gap = rng.expovariate(1.0 / mean_gap)
        if rng.random() < 0.2:
            gap *= 0.05
        timestamp += gap
        return timestamp

    while len(trace) < update_count:
        roll = rng.random()
        if withdrawn and (roll < flap_share / 2 or len(withdrawn) > flappy_count):
            # Complete a pending flap: re-announce.
            prefix, nexthop = withdrawn.pop(rng.randrange(len(withdrawn)))
            trace.append(RouteUpdate.announce(prefix, nexthop, tick()))
            live[prefix] = nexthop
        elif roll < flap_share:
            prefix = rng.choices(flappy, weights=weights)[0]
            if prefix not in live:
                continue
            withdrawn.append((prefix, live.pop(prefix)))
            trace.append(RouteUpdate.withdraw(prefix, tick()))
        elif roll < flap_share + change_share:
            prefix = rng.choices(flappy, weights=weights)[0]
            if prefix not in live:
                continue
            original = table.get(prefix, live[prefix])
            new_nexthop = (
                alternate_for(prefix) if live[prefix] == original else original
            )
            if new_nexthop == live[prefix]:
                continue
            trace.append(RouteUpdate.announce(prefix, new_nexthop, tick()))
            live[prefix] = new_nexthop
        elif roll < flap_share + change_share + duplicate_share:
            prefix = rng.choices(flappy, weights=weights)[0]
            if prefix not in live:
                continue
            trace.append(RouteUpdate.announce(prefix, live[prefix], tick()))
        elif roll < flap_share + change_share + duplicate_share + new_share:
            # New announcements appear next to existing ones (a newly
            # deaggregated or newly allocated block) and inherit the
            # neighbourhood's nexthop.
            neighbour = rng.choice(population)
            length = min(width, max(neighbour.length, rng.choice([22, 23, 24])))
            step = 1 << (width - length)
            value = (neighbour.value - neighbour.value % step) + step * rng.randint(
                0, 3
            )
            if value >= (1 << width):
                continue
            prefix = Prefix(value - value % step, length, width)
            if prefix in live:
                continue
            nexthop = live.get(neighbour, table.get(neighbour))
            if nexthop is None:
                nexthop = rng.choice(nexthop_pool)
            trace.append(RouteUpdate.announce(prefix, nexthop, tick()))
            live[prefix] = nexthop
            created += 1
        else:
            # Keep the table size roughly flat (Figure 8's right axis):
            # only retire when creations have kept pace.
            if retired >= created:
                continue
            prefix = rng.choice(population)
            if prefix not in live:
                continue
            del live[prefix]
            trace.append(RouteUpdate.withdraw(prefix, tick()))
            retired += 1
    return trace


def generate_burst_trace(
    table: dict[Prefix, Nexthop],
    burst_count: int,
    burst_size: int,
    nexthops: Sequence[Nexthop],
    rng: random.Random,
    flappy_fraction: float = 0.02,
    popularity_exponent: float = 1.1,
    working_set: int | None = None,
    intra_burst_gap_s: float = 0.02,
    inter_burst_gap_s: float = 30.0,
    name: str = "synthetic-bursts",
) -> UpdateTrace:
    """A flap-heavy *burst* trace: the batched-update workload.

    Real BGP feeds deliver updates in bursts separated by quiet periods,
    and within a burst the same small set of unstable prefixes flaps
    repeatedly (the FAQS observation). Each of the ``burst_count`` bursts
    here draws a working set of ``working_set`` flappy prefixes (default
    ``burst_size // 8``, so every prefix is touched ~8 times per burst)
    and emits ``burst_size`` withdraw/re-announce/path-flip/duplicate
    events over them.

    The trace is replayable (withdraws only target live prefixes) and
    burst boundaries are recoverable: intra-burst gaps are strictly
    bounded by ``intra_burst_gap_s`` while bursts are separated by
    ``inter_burst_gap_s``, so
    ``iter_bursts(trace, max_gap_s=intra_burst_gap_s)`` re-yields exactly
    the generated bursts.
    """
    if burst_count < 0 or burst_size < 1:
        raise ValueError("burst_count must be >= 0 and burst_size >= 1")
    if not table and burst_count:
        raise ValueError("cannot generate bursts against an empty table")
    if inter_burst_gap_s <= intra_burst_gap_s:
        raise ValueError("inter_burst_gap_s must exceed intra_burst_gap_s")
    live: dict[Prefix, Nexthop] = dict(table)
    population = list(live)
    rng.shuffle(population)
    flappy_count = max(1, int(len(population) * flappy_fraction))
    flappy = population[:flappy_count]
    weights = zipf_weights(flappy_count, popularity_exponent)
    nexthop_pool = list(nexthops)
    alternates: dict[Prefix, Nexthop] = {}
    if working_set is None:
        working_set = max(1, burst_size // 8)

    trace = UpdateTrace(name=name)
    timestamp = 0.0
    for _ in range(burst_count):
        timestamp += inter_burst_gap_s
        chosen: list[Prefix] = []
        seen: set[Prefix] = set()
        # Weighted draw of a distinct working set (flappy_count may be
        # smaller than working_set; duplicates are simply dropped).
        for candidate in rng.choices(flappy, weights=weights, k=working_set * 3):
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
            if len(chosen) >= working_set:
                break
        for _ in range(burst_size):
            # Strictly bounded intra-burst gap keeps bursts recoverable.
            timestamp += intra_burst_gap_s * rng.random() * 0.999
            prefix = rng.choice(chosen)
            original = table.get(prefix)
            current = live.get(prefix)
            if current is None:
                nexthop = (
                    original if original is not None else rng.choice(nexthop_pool)
                )
                trace.append(RouteUpdate.announce(prefix, nexthop, timestamp))
                live[prefix] = nexthop
                continue
            roll = rng.random()
            if roll < 0.45:
                del live[prefix]
                trace.append(RouteUpdate.withdraw(prefix, timestamp))
            elif roll < 0.60:
                # Duplicate re-announcement (same nexthop, FIB no-op).
                trace.append(RouteUpdate.announce(prefix, current, timestamp))
            else:
                alternate = alternates.get(prefix)
                if alternate is None:
                    alternate = rng.choice(nexthop_pool)
                    alternates[prefix] = alternate
                flipped = alternate if current == original else original
                if flipped is None or flipped == current:
                    flipped = alternate
                if flipped == current:
                    del live[prefix]
                    trace.append(RouteUpdate.withdraw(prefix, timestamp))
                else:
                    trace.append(RouteUpdate.announce(prefix, flipped, timestamp))
                    live[prefix] = flipped
    return trace
