"""Synthetic workloads calibrated to the paper's published statistics.

The paper's data sets (Tier-1 provider iBGP traces and FIB snapshots;
RouteViews RIBs and update days, 2001–2010) are proprietary or require
network access, so this package synthesizes equivalents that preserve the
properties the experiments exercise: table size, prefix-length mix,
prefix→nexthop skew (the *effective nexthop count* E(R) of Section 4.3),
spatial nexthop locality, and flap-heavy update churn.
"""

from repro.workloads.distributions import (
    assign_skewed_nexthops,
    effective_nexthops,
    entropy_bits,
    zipf_weights,
)
from repro.workloads.provider import (
    AR_PROFILES,
    IGR_PROFILE,
    AccessRouterProfile,
    build_access_router_table,
    build_igr_scenario,
)
from repro.workloads.routeviews import (
    ROUTEVIEWS_TABLE_SIZES,
    RouteViewsScenario,
    build_routeviews_scenario,
)
from repro.workloads.scale import scale_factor, scaled
from repro.workloads.synthetic_table import TableProfile, generate_table
from repro.workloads.synthetic_updates import (
    UpdateMix,
    generate_burst_trace,
    generate_update_trace,
)
from repro.workloads.trace_io import (
    load_table,
    load_trace,
    save_table,
    save_trace,
)

__all__ = [
    "AR_PROFILES",
    "AccessRouterProfile",
    "IGR_PROFILE",
    "ROUTEVIEWS_TABLE_SIZES",
    "RouteViewsScenario",
    "TableProfile",
    "UpdateMix",
    "assign_skewed_nexthops",
    "build_access_router_table",
    "build_igr_scenario",
    "build_routeviews_scenario",
    "effective_nexthops",
    "entropy_bits",
    "generate_table",
    "generate_burst_trace",
    "generate_update_trace",
    "load_table",
    "load_trace",
    "save_table",
    "save_trace",
    "scale_factor",
    "scaled",
    "zipf_weights",
]
