"""The REPRO_SCALE knob.

Paper-sized tables (~420k prefixes) are slow in pure Python (the repro
band warned about this), so every workload size is multiplied by
``REPRO_SCALE`` (default 0.1 → ~42k-prefix provider tables). Set
``REPRO_SCALE=1`` to approximate the paper's absolute sizes.
"""

from __future__ import annotations

import os

DEFAULT_SCALE = 0.1
_ENV_VAR = "REPRO_SCALE"


def scale_factor() -> float:
    """The active scale factor (from the environment, else 0.1)."""
    raw = os.environ.get(_ENV_VAR)
    if raw is None:
        return DEFAULT_SCALE
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"{_ENV_VAR}={raw!r} is not a number") from exc
    if value <= 0:
        raise ValueError(f"{_ENV_VAR} must be positive, got {value}")
    return value


def scaled(size: int, minimum: int = 1) -> int:
    """``size`` multiplied by the scale factor, floored at ``minimum``."""
    return max(minimum, round(size * scale_factor()))
