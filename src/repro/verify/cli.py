"""The umbrella front end: ``python -m repro.verify``.

One invocation runs every static pass — lint (REPRO001-006), flow
(REPRO007-012), effects (REPRO013-017), interleave (REPRO018-023) —
over a *single* parse of the repo: the shared
:func:`repro.verify.config.load_sources` pass feeds every analyzer,
and the :class:`~repro.verify.cache.AnalysisCache` makes warm reruns
skip unchanged files entirely.

The per-pass entry points (``python -m repro.verify.lint`` / ``.flow``
/ ``.effects`` / ``.interleave``) stay available as thin aliases; this
CLI is what CI and pre-commit run. Exit contract: **0** clean, **1**
new findings, **2** usage error.

``--diff BASE`` is the pull-request fast mode: findings are restricted
to the files changed since ``BASE`` plus every module that (transitively)
imports one of them — whole-program analysis still sees the full
project, so cross-file rules stay sound; only the *reporting* scope
narrows.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.verify import lint as lint_mod
from repro.verify.cache import AnalysisCache
from repro.verify.config import default_cache, find_repo_root, load_sources
from repro.verify.effects.cli import BASELINE_NAME as EFFECTS_BASELINE_NAME
from repro.verify.effects.rules import RULES as EFFECT_RULES
from repro.verify.effects.rules import analyze_effects
from repro.verify.flow.callgraph import CallGraph
from repro.verify.flow.cli import BASELINE_NAME as FLOW_BASELINE_NAME
from repro.verify.flow.project import Project
from repro.verify.flow.report import (
    Finding,
    load_baseline,
    relativize,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)
from repro.verify.flow.rules import RULES as FLOW_RULES
from repro.verify.flow.rules import analyze as flow_analyze
from repro.verify.interleave.cli import BASELINE_NAME as INTERLEAVE_BASELINE_NAME
from repro.verify.interleave.rules import RULES as INTERLEAVE_RULES
from repro.verify.interleave.rules import analyze_interleave

#: Default analysis roots, relative to the repo root.
DEFAULT_ROOTS = ("src/repro", "examples")

LINT_CODES = frozenset(lint_mod.RULES)
FLOW_CODES = frozenset(FLOW_RULES)
EFFECT_CODES = frozenset(EFFECT_RULES)
INTERLEAVE_CODES = frozenset(INTERLEAVE_RULES)
ALL_CODES = LINT_CODES | FLOW_CODES | EFFECT_CODES | INTERLEAVE_CODES


def rule_index() -> dict[str, str]:
    """Merged code -> one-line summary across all passes."""
    merged = dict(lint_mod.RULES)
    merged.update({code: spec.summary for code, spec in FLOW_RULES.items()})
    merged.update({code: spec.summary for code, spec in EFFECT_RULES.items()})
    merged.update(
        {code: spec.summary for code, spec in INTERLEAVE_RULES.items()}
    )
    return merged


def _lint_findings(
    errors: Sequence[lint_mod.LintError],
    module_names: dict[str, str],
    root: Optional[Path],
) -> list[Finding]:
    """Lift lint diagnostics into the flow layer's Finding model, so the
    merged report shares one fingerprint/baseline/SARIF pipeline."""
    findings = []
    for error in errors:
        rel = relativize(Path(error.path), root)
        findings.append(
            Finding(
                error.code,
                rel,
                error.line,
                module_names.get(error.path, rel),
                error.message,
            )
        )
    return findings


def _changed_files(root: Path, base: str) -> Optional[set[str]]:
    """Repo-relative paths changed since ``base`` (None when git fails)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", base, "--", "*.py"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return {line.strip() for line in proc.stdout.splitlines() if line.strip()}


def diff_scope(
    project: Project, root: Path, changed: set[str]
) -> set[str]:
    """``changed`` plus every module that transitively imports one.

    The reverse import graph is the dependency cone a change can
    invalidate: whole-program findings outside it cannot have been
    introduced by the diff.
    """
    path_to_module: dict[str, str] = {}
    for name, module in project.modules.items():
        path_to_module[relativize(module.path, root)] = name
    known = set(project.modules)
    # module -> modules that import it (edges point importee -> importer)
    reverse: dict[str, set[str]] = {name: set() for name in known}
    for name, module in project.modules.items():
        for target in module.imports.values():
            # A from-import target may be module.symbol; peel trailing
            # parts until a known module matches.
            candidate = target
            while candidate and candidate not in known:
                if "." not in candidate:
                    candidate = ""
                else:
                    candidate = candidate.rsplit(".", 1)[0]
            if candidate and candidate != name:
                reverse[candidate].add(name)
    seeds = {path_to_module[p] for p in changed if p in path_to_module}
    worklist = list(seeds)
    reached = set(seeds)
    while worklist:
        current = worklist.pop()
        for importer in reverse.get(current, ()):
            if importer not in reached:
                reached.add(importer)
                worklist.append(importer)
    scope = set(changed)
    for name in reached:
        scope.add(relativize(project.modules[name].path, root))
    return scope


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Combined SMALTA static verification: lint (REPRO001-006) + "
            "flow (REPRO007-012) + effects (REPRO013-017) + interleave "
            "(REPRO018-023) over a single shared parse pass with an "
            "incremental content-hash cache."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories (default: {' '.join(DEFAULT_ROOTS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the report here"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes from any pass (default: all)",
    )
    parser.add_argument(
        "--diff",
        metavar="BASE",
        default=None,
        help="fast mode: only report findings in files changed since the "
        "given git ref, plus modules that transitively import them",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current flow/effects findings into their baseline "
        "files and exit 0 (lint has no baseline: fix or # noqa)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss statistics to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _resolve_paths(args_paths: Sequence[Path]) -> list[Path]:
    if len(args_paths) > 0:
        return list(args_paths)
    root = find_repo_root(Path.cwd()) or Path.cwd()
    return [root / rel for rel in DEFAULT_ROOTS if (root / rel).exists()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    index = rule_index()
    if args.list_rules:
        for code in sorted(index):
            print(f"{code}  {index[code]}")
        return 0
    paths = _resolve_paths(args.paths)
    if len(paths) == 0:
        parser.error("no paths given and no default roots found")
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")
    select: Optional[frozenset[str]] = None
    if args.select is not None:
        select = frozenset(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = select - ALL_CODES
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    root = find_repo_root(paths[0])
    cache: Optional[AnalysisCache] = default_cache(paths)

    # -- one parse pass, one symbol table, shared by every pass ----------
    sources = load_sources(paths, cache)
    project = Project.load(paths, sources=sources, cache=cache)
    graph = CallGraph.build(project)
    module_names = {str(s.path): s.name for s in sources}

    findings: list[Finding] = []
    run_lint = select is None or bool(select & LINT_CODES)
    run_flow = select is None or bool(select & FLOW_CODES)
    run_effects = select is None or bool(select & EFFECT_CODES)
    run_interleave = select is None or bool(select & INTERLEAVE_CODES)
    if run_lint and not args.write_baseline:
        lint_select = set(select & LINT_CODES) if select is not None else None
        errors = lint_mod.lint_paths(
            paths, select=lint_select, sources=sources, cache=cache
        )
        findings.extend(_lint_findings(errors, module_names, root))
    flow_findings: list[Finding] = []
    effect_findings: list[Finding] = []
    if run_flow:
        flow_findings = flow_analyze(
            paths,
            select=(select & FLOW_CODES) if select is not None else None,
            sources=sources,
            cache=cache,
            project=project,
            graph=graph,
        )
    if run_effects:
        effect_findings = analyze_effects(
            paths,
            select=(select & EFFECT_CODES) if select is not None else None,
            sources=sources,
            cache=cache,
            project=project,
            graph=graph,
        )
    interleave_findings: list[Finding] = []
    if run_interleave:
        interleave_findings = analyze_interleave(
            paths,
            select=(select & INTERLEAVE_CODES) if select is not None else None,
            sources=sources,
            cache=cache,
            project=project,
            graph=graph,
        )

    if args.write_baseline:
        base = root or Path.cwd()
        write_baseline(base / FLOW_BASELINE_NAME, flow_findings)
        write_baseline(base / EFFECTS_BASELINE_NAME, effect_findings)
        write_baseline(base / INTERLEAVE_BASELINE_NAME, interleave_findings)
        print(
            f"wrote {len(flow_findings)} flow, {len(effect_findings)} "
            f"effects, and {len(interleave_findings)} interleave "
            f"fingerprint(s) under {base}"
        )
        return 0

    # -- subtract the checked-in baselines (kept empty by policy) --------
    if root is not None:
        flow_known = load_baseline(root / FLOW_BASELINE_NAME)
        effects_known = load_baseline(root / EFFECTS_BASELINE_NAME)
        interleave_known = load_baseline(root / INTERLEAVE_BASELINE_NAME)
        flow_findings = [
            f for f in flow_findings if f.fingerprint() not in flow_known
        ]
        effect_findings = [
            f for f in effect_findings if f.fingerprint() not in effects_known
        ]
        interleave_findings = [
            f
            for f in interleave_findings
            if f.fingerprint() not in interleave_known
        ]
    findings.extend(flow_findings)
    findings.extend(effect_findings)
    findings.extend(interleave_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if args.diff is not None and root is not None:
        changed = _changed_files(root, args.diff)
        if changed is None:
            print(
                f"warning: git diff against {args.diff!r} failed; "
                "running in full mode",
                file=sys.stderr,
            )
        else:
            scope = diff_scope(project, root, changed)
            findings = [f for f in findings if f.path in scope]
            print(
                f"diff mode: {len(changed)} changed file(s), "
                f"{len(scope)} in reporting scope",
                file=sys.stderr,
            )

    if args.format == "text":
        rendered = render_text(findings)
    elif args.format == "json":
        rendered = render_json(findings)
    else:
        rendered = render_sarif(findings, index)
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    if args.stats and cache is not None:
        print(cache.stats(), file=sys.stderr)
    return 1 if len(findings) > 0 else 0
