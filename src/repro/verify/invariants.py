"""The SMALTA invariant auditor.

SMALTA's correctness rests on bookkeeping the incremental algorithms
(Section 3, Algorithms 1-3) must keep consistent across arbitrarily many
interleaved ``insert``/``delete``/``snapshot`` calls: every deaggregate's
preimage pointer ``pi``, the reverse deaggregate index the "visit
deaggregates of P" loops walk, and the OT/AT label relationships of the
paper's Invariants 1 and 2 (Section 3.3). This module audits all of it
in one pass over the union trie, reporting structured
:class:`Violation` records (offending prefix + invariant code) rather
than bare asserts, so a self-checking deployment can log and keep
forwarding while a test fails loudly.

Two entry points:

- :func:`audit_trie` — the structural checks, given only a
  :class:`~repro.core.trie.FibTrie`;
- :func:`audit_state` — the above plus the semantic checks on a
  :class:`~repro.core.smalta.SmaltaState`: AT ≡ OT (the TaCo check the
  paper cites) and, optionally, OT == a caller-supplied reference table
  and post-snapshot label minimality.

The full catalogue, with paper-section references, is documented in
``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.core.equivalence import equivalence_counterexample
from repro.core.trie import FibTrie, Node
from repro.net.nexthop import DROP, Nexthop
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.core.smalta import SmaltaState


class InvariantCode(enum.Enum):
    """Stable identifiers for the invariant classes the auditor checks."""

    #: Parent/child links or per-node prefixes are inconsistent, or an
    #: empty node survived pruning.
    STRUCTURE = "structure"
    #: The cached #(OT)/#(AT) counters disagree with the actual labels.
    COUNT_DRIFT = "count-drift"
    #: A ``pi`` pointer targets a node no longer present in the trie.
    PI_DANGLING = "pi-dangling"
    #: A node carries a ``pi`` pointer but no AT label (a node outside
    #: the AT cannot be a deaggregate of anything).
    PI_UNLABELED = "pi-unlabeled"
    #: A (non-nil) preimage is not itself an Original Tree entry.
    PI_PREIMAGE_NOT_OT = "pi-preimage-not-ot"
    #: A deaggregate's AT label differs from its preimage's OT nexthop
    #: (or from DROP, for deaggregates of the unrouted context).
    PI_LABEL_MISMATCH = "pi-label-mismatch"
    #: An explicit null-route entry sits under a covering OT entry.
    DROP_UNDER_OT = "drop-under-ot"
    #: Paper Invariant 1: an OT label sits strictly between a
    #: deaggregate and its preimage.
    OT_SHADOWED = "ot-shadowed"
    #: A reverse-index entry points at a node whose ``pi`` does not
    #: point back (stale entry in ``deaggs``).
    REVERSE_INDEX_STALE = "reverse-index-stale"
    #: A ``pi`` pointer has no matching reverse-index entry.
    REVERSE_INDEX_MISSING = "reverse-index-missing"
    #: Paper Invariant 2 (operational form): an OT entry with no AT
    #: label is neither served by AT propagation nor fully re-covered
    #: by deaggregates.
    AT_UNCOVERED = "at-uncovered"
    #: Post-snapshot only: an AT label equals the value its nearest
    #: labeled AT ancestor already propagates (ORTC never emits these).
    AT_REDUNDANT = "at-redundant"
    #: The Original Tree differs from the caller's reference table.
    OT_MISMATCH = "ot-mismatch"
    #: The Aggregated Tree is not semantically equivalent to the OT
    #: (the TaCo check).
    SEMANTIC_DIVERGENCE = "semantic-divergence"


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    ``prefix`` names the offending trie position when one exists (None
    for table-level findings such as counter drift).
    """

    code: InvariantCode
    prefix: Optional[Prefix]
    message: str

    def __str__(self) -> str:
        where = f" at {self.prefix}" if self.prefix is not None else ""
        return f"[{self.code.value}]{where}: {self.message}"


def _iter_with_nil(trie: FibTrie) -> Iterator[Node]:
    yield from trie.iter_nodes()
    yield trie.nil_node


def _check_structure(trie: FibTrie, out: list[Violation]) -> None:
    """Parent/child links, per-node prefixes, eager pruning, counters."""
    ot_count = 0
    at_count = 0
    for node in trie.iter_nodes():
        if node.d_o is not None:
            ot_count += 1
        if node.d_a is not None:
            at_count += 1
        if node is not trie.root and node.is_empty:
            out.append(
                Violation(
                    InvariantCode.STRUCTURE,
                    node.prefix,
                    "empty node survived pruning",
                )
            )
        for bit in (0, 1):
            child = node.right if bit else node.left
            if child is None:
                continue
            if child.parent is not node:
                out.append(
                    Violation(
                        InvariantCode.STRUCTURE,
                        child.prefix,
                        f"parent link does not point at {node.prefix}",
                    )
                )
            if child.prefix != node.prefix.child(bit):
                out.append(
                    Violation(
                        InvariantCode.STRUCTURE,
                        child.prefix,
                        f"child prefix inconsistent under {node.prefix}",
                    )
                )
    if ot_count != trie.ot_size:
        out.append(
            Violation(
                InvariantCode.COUNT_DRIFT,
                None,
                f"cached #(OT)={trie.ot_size} but {ot_count} labels found",
            )
        )
    if at_count != trie.at_size:
        out.append(
            Violation(
                InvariantCode.COUNT_DRIFT,
                None,
                f"cached #(AT)={trie.at_size} but {at_count} labels found",
            )
        )


def _check_preimages(trie: FibTrie, out: list[Violation]) -> None:
    """The ``pi`` pointer discipline and paper Invariant 1."""
    nil_node = trie.nil_node
    live = {id(node) for node in trie.iter_nodes()}
    for node in trie.iter_nodes():
        preimage = node.pi
        if preimage is None:
            continue
        if preimage is not nil_node and id(preimage) not in live:
            out.append(
                Violation(
                    InvariantCode.PI_DANGLING,
                    node.prefix,
                    f"pi targets pruned node {preimage.prefix}",
                )
            )
            continue
        if node.d_a is None:
            out.append(
                Violation(
                    InvariantCode.PI_UNLABELED,
                    node.prefix,
                    "pi set on a node with no AT label",
                )
            )
        if preimage is nil_node:
            if node.d_a is not None and node.d_a != DROP:
                out.append(
                    Violation(
                        InvariantCode.PI_LABEL_MISMATCH,
                        node.prefix,
                        f"deaggregate of the unrouted context labeled "
                        f"{node.d_a}, expected DROP",
                    )
                )
            walker = node.parent
            while walker is not None:
                if walker.d_o is not None:
                    out.append(
                        Violation(
                            InvariantCode.DROP_UNDER_OT,
                            node.prefix,
                            f"explicit DROP under OT entry "
                            f"{walker.prefix}->{walker.d_o}",
                        )
                    )
                    break
                walker = walker.parent
            continue
        if preimage.d_o is None:
            out.append(
                Violation(
                    InvariantCode.PI_PREIMAGE_NOT_OT,
                    node.prefix,
                    f"preimage {preimage.prefix} carries no OT label",
                )
            )
        elif node.d_a is not None and node.d_a != preimage.d_o:
            out.append(
                Violation(
                    InvariantCode.PI_LABEL_MISMATCH,
                    node.prefix,
                    f"deaggregate labeled {node.d_a} but preimage "
                    f"{preimage.prefix} routes to {preimage.d_o}",
                )
            )
        if not preimage.prefix.contains(node.prefix) or preimage is node:
            out.append(
                Violation(
                    InvariantCode.PI_DANGLING,
                    node.prefix,
                    f"preimage {preimage.prefix} is not a proper ancestor",
                )
            )
            continue
        walker = node.parent
        while walker is not None and walker is not preimage:
            if walker.d_o is not None:
                out.append(
                    Violation(
                        InvariantCode.OT_SHADOWED,
                        node.prefix,
                        f"OT entry {walker.prefix}->{walker.d_o} sits between "
                        f"deaggregate and preimage {preimage.prefix}",
                    )
                )
            walker = walker.parent
        if walker is None:
            out.append(
                Violation(
                    InvariantCode.PI_DANGLING,
                    node.prefix,
                    f"preimage {preimage.prefix} not on the ancestor path",
                )
            )


def _check_reverse_index(trie: FibTrie, out: list[Violation]) -> None:
    """``deaggs`` must be the exact inverse of the ``pi`` map."""
    live = {id(node) for node in trie.iter_nodes()}
    for holder in _iter_with_nil(trie):
        if not holder.deaggs:
            continue
        holder_name = (
            "nil" if holder is trie.nil_node else str(holder.prefix)
        )
        for member in holder.deaggs:
            if member.pi is not holder:
                out.append(
                    Violation(
                        InvariantCode.REVERSE_INDEX_STALE,
                        member.prefix,
                        f"listed as deaggregate of {holder_name} but pi "
                        f"points elsewhere",
                    )
                )
            if id(member) not in live:
                out.append(
                    Violation(
                        InvariantCode.REVERSE_INDEX_STALE,
                        member.prefix,
                        f"deaggregate of {holder_name} is no longer in the trie",
                    )
                )
    for node in trie.iter_nodes():
        preimage = node.pi
        if preimage is None:
            continue
        if preimage.deaggs is None or node not in preimage.deaggs:
            out.append(
                Violation(
                    InvariantCode.REVERSE_INDEX_MISSING,
                    node.prefix,
                    f"pi points at "
                    f"{'nil' if preimage is trie.nil_node else preimage.prefix} "
                    f"but the reverse index does not list this node",
                )
            )


def _fully_covered_below(node: Node) -> bool:
    """True when every address under ``node`` meets an AT label at or
    below the first OT-or-AT node on its downward path (no gap where an
    ancestor's AT propagation would leak through)."""
    stack = [node]
    while stack:
        current = stack.pop()
        for bit in (0, 1):
            child = current.right if bit else current.left
            if child is None:
                # A gap: addresses here have `node` as their OT longest
                # match, yet inherit the mismatched AT propagation.
                return False
            if child.d_a is not None:
                continue  # structurally covered (value checked by TaCo)
            if child.d_o is not None:
                continue  # a deeper OT entry owns this space
            stack.append(child)
    return True


def _check_ot_coverage(trie: FibTrie, out: list[Violation]) -> None:
    """Paper Invariant 2, operationally: every AT-silent OT entry is
    served by propagation of its own nexthop or fully re-covered by
    deaggregates below."""
    for node in trie.iter_nodes():
        if node.d_o is None or node.d_a is not None:
            continue
        walker = node.parent
        while walker is not None and walker.d_a is None:
            walker = walker.parent
        inherited = walker.d_a if walker is not None else DROP
        if inherited == node.d_o:
            continue
        if not _fully_covered_below(node):
            out.append(
                Violation(
                    InvariantCode.AT_UNCOVERED,
                    node.prefix,
                    f"OT entry routes to {node.d_o} but inherits {inherited} "
                    "in the AT and is not re-covered by deaggregates",
                )
            )


def _check_minimality(trie: FibTrie, out: list[Violation]) -> None:
    """Post-snapshot check: no AT label repeats what already propagates.

    Only sound right after ``snapshot()`` — the incremental algorithms
    deliberately tolerate transient redundancy between snapshots (that
    tolerated drift is exactly what Figure 8 measures).
    """
    for node in trie.iter_nodes():
        if node.d_a is None:
            continue
        walker = node.parent
        while walker is not None and walker.d_a is None:
            walker = walker.parent
        inherited = walker.d_a if walker is not None else DROP
        if inherited == node.d_a:
            out.append(
                Violation(
                    InvariantCode.AT_REDUNDANT,
                    node.prefix,
                    f"AT label {node.d_a} already propagates from "
                    f"{'the root context' if walker is None else walker.prefix}",
                )
            )


def audit_trie(trie: FibTrie, optimal: bool = False) -> list[Violation]:
    """Audit the structural invariants of one OT/AT union trie.

    With ``optimal=True`` (valid only immediately after a snapshot) the
    label-minimality check is included. Returns all violations found;
    an empty list means the trie is healthy.
    """
    out: list[Violation] = []
    _check_structure(trie, out)
    _check_preimages(trie, out)
    _check_reverse_index(trie, out)
    _check_ot_coverage(trie, out)
    if optimal:
        _check_minimality(trie, out)
    return out


def audit_state(
    state: "SmaltaState",
    reference: Optional[Mapping[Prefix, Nexthop]] = None,
    optimal: bool = False,
) -> list[Violation]:
    """Full audit of a :class:`~repro.core.smalta.SmaltaState`.

    Runs :func:`audit_trie` plus the semantic checks: AT ≡ OT (TaCo) and
    OT == ``reference`` when a reference table is supplied.
    """
    trie = state.trie
    out = audit_trie(trie, optimal=optimal)
    if reference is not None:
        ot = state.ot_table()
        for prefix in sorted(set(ot) | set(reference)):
            have = ot.get(prefix)
            want = reference.get(prefix)
            if have != want:
                out.append(
                    Violation(
                        InvariantCode.OT_MISMATCH,
                        prefix,
                        f"OT has {have}, reference has {want}",
                    )
                )
    counterexample = equivalence_counterexample(
        state.ot_table(), state.at_table(), trie.width
    )
    if counterexample is not None:
        region, ot_nexthop, at_nexthop = counterexample
        out.append(
            Violation(
                InvariantCode.SEMANTIC_DIVERGENCE,
                region,
                f"addresses resolve to {ot_nexthop} in the OT but "
                f"{at_nexthop} in the AT",
            )
        )
    return out
