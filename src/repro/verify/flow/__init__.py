"""Whole-program semantic analysis for the SMALTA repo.

Where :mod:`repro.verify.lint` checks one file at a time, this package
parses the *entire* ``src/repro`` tree into a shared model —
module/import resolution (:mod:`~repro.verify.flow.project`), a
repo-wide call graph with heuristic method resolution
(:mod:`~repro.verify.flow.callgraph`), per-function control-flow
graphs (:mod:`~repro.verify.flow.cfg`) and an intraprocedural dataflow
framework (:mod:`~repro.verify.flow.dataflow`) — and runs six
interprocedural rules on top (:mod:`~repro.verify.flow.rules`):

- **REPRO007** call-graph recursion cycles (supersedes the lint pass's
  self-recursion-only REPRO004, which remains as its fast-path alias);
- **REPRO008** dropped ``@must_consume`` results — FIB deltas that
  reach function exit unconsumed;
- **REPRO009** trie mutation while a lazy traversal of the same
  structure is live;
- **REPRO010** typestate protocols (``SmaltaState`` load-before-use,
  ``DownloadChannel`` use-after-close);
- **REPRO011** swallowed failure signals (``ReconcileError`` /
  ``AuditError`` / ``Violation`` handled without re-raise, log, or
  metric);
- **REPRO012** metric-name drift between ``registry.counter/...``
  literals and the catalog tables in ``docs/OBSERVABILITY.md`` /
  ``docs/RESILIENCE.md`` — both directions.

Run it with ``python -m repro.verify.flow src/repro`` (text, JSON, or
SARIF output; ``# repro: allow[RULE]`` inline suppressions; a
checked-in ``.flow-baseline.json`` for tolerated legacy findings).
See ``docs/VERIFICATION.md`` for the rule catalog and the recipe for
adding a rule.
"""

from repro.verify.flow.report import Finding
from repro.verify.flow.rules import RULES, RuleContext, RuleSpec, analyze

__all__ = ["RULES", "Finding", "RuleContext", "RuleSpec", "analyze"]
