"""The whole-program model: modules, imports, classes, functions.

:class:`Project` parses every file once and resolves the repo's import
graph into a symbol table the call-graph builder and the rule plugins
share. Resolution is deliberately *heuristic but conservative*: a name
that cannot be pinned to a project symbol resolves to nothing, so the
downstream rules err toward silence rather than noise.

Everything here is written with explicit worklists — the analyzer is
itself subject to the repo's no-recursion rules (REPRO004/REPRO007),
and it had better pass its own gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from repro.verify.cache import AnalysisCache
from repro.verify.config import SourceFile, load_sources


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  #: e.g. ``repro.core.manager.SmaltaManager.apply``
    module: str
    cls: Optional[str]  #: enclosing class qualname, None for module level
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: Path
    #: Decorator names as written (dotted tails collapsed to the last part).
    decorators: tuple[str, ...] = ()
    #: True when the body contains a ``yield`` (the def is a generator).
    is_generator: bool = False

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition with its directly declared methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: Path
    #: Base-class qualnames that resolved to project classes.
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` types inferred from ``__init__``/class-body
    #: assignments, as project-class qualnames.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    tree: ast.Module
    source_lines: list[str]
    #: Local name -> fully qualified imported target.
    imports: dict[str, str] = field(default_factory=dict)


def _decorator_name(node: ast.expr) -> Optional[str]:
    """The trailing identifier of a decorator expression, if any."""
    target = node
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def _contains_yield(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function body itself yields (nested defs excluded)."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return False


def annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """The plain class name an annotation resolves to, unwrapping
    ``Optional[X]``, ``X | None``, and string annotations."""
    while annotation is not None:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
            continue
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Attribute):
            return annotation.attr
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if (isinstance(base, ast.Name) and base.id == "Optional") or (
                isinstance(base, ast.Attribute) and base.attr == "Optional"
            ):
                annotation = annotation.slice
                continue
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            left = annotation.left
            if isinstance(left, ast.Constant) and left.value is None:
                annotation = annotation.right
            else:
                annotation = left
            continue
        return None
    return None


class Project:
    """Parsed modules plus the cross-module symbol table."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Class *basename* -> qualnames (for resolving bare annotations).
        self.class_names: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def load(
        cls,
        paths: Sequence[Path],
        sources: Optional[Sequence[SourceFile]] = None,
        cache: Optional[AnalysisCache] = None,
    ) -> "Project":
        """Build the symbol table from every file under ``paths``.

        ``sources`` (from :func:`repro.verify.config.load_sources`)
        lets a combined run share one parse pass across lint, flow, and
        effects; otherwise the files are loaded here, optionally through
        the content-hash ``cache``.
        """
        project = cls()
        if sources is None:
            sources = load_sources(paths, cache)
        for source in sources:
            module = ModuleInfo(source.name, source.path, source.tree, source.lines)
            project.modules[module.name] = module
        for module in project.modules.values():
            project._index_module(module)
        for module in project.modules.values():
            project._resolve_bases(module)
        for info in project.classes.values():
            project._infer_attr_types(info)
        return project

    def _index_module(self, module: ModuleInfo) -> None:
        """Collect imports, classes, and functions of one module."""
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module.name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}"
        # Walk definitions iteratively, tracking the enclosing class.
        stack: list[tuple[ast.AST, Optional[str]]] = [
            (node, None) for node in reversed(module.tree.body)
        ]
        while stack:
            node, cls_qual = stack.pop()
            if isinstance(node, ast.ClassDef):
                qual = f"{module.name}.{node.name}"
                info = ClassInfo(qual, module.name, node.name, node, module.path)
                self.classes[qual] = info
                self.class_names.setdefault(node.name, []).append(qual)
                stack.extend((item, qual) for item in reversed(node.body))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner = f"{cls_qual}." if cls_qual else f"{module.name}."
                info = self.functions.setdefault(
                    f"{owner}{node.name}",
                    FunctionInfo(
                        qualname=f"{owner}{node.name}",
                        module=module.name,
                        cls=cls_qual,
                        name=node.name,
                        node=node,
                        path=module.path,
                        decorators=tuple(
                            name
                            for name in (
                                _decorator_name(d) for d in node.decorator_list
                            )
                            if name is not None
                        ),
                        is_generator=_contains_yield(node),
                    ),
                )
                if cls_qual is not None and cls_qual in self.classes:
                    self.classes[cls_qual].methods[node.name] = info
                # Nested defs are not indexed as public symbols.

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom) -> Optional[str]:
        """The absolute package an ``ImportFrom`` pulls names out of."""
        if node.level == 0:
            return node.module
        parts = module.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _resolve_bases(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            qual = f"{module.name}.{node.name}"
            info = self.classes.get(qual)
            if info is None:
                continue
            bases: list[str] = []
            for base in node.bases:
                name = annotation_name(base)
                if name is None:
                    continue
                resolved = self.resolve_class_name(module, name)
                if resolved is not None:
                    bases.append(resolved)
            info.bases = tuple(bases)

    def _infer_attr_types(self, info: ClassInfo) -> None:
        """Infer ``self.<attr>`` project-class types from ``__init__``."""
        module = self.modules[info.module]
        init = info.methods.get("__init__")
        bodies: list[list[ast.stmt]] = []
        if init is not None:
            bodies.append(list(init.node.body))
        bodies.append(list(info.node.body))
        for body in bodies:
            for stmt in body:
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    annotation = stmt.annotation
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                resolved = self._value_class(module, value, annotation)
                if resolved is not None:
                    info.attr_types.setdefault(target.attr, resolved)

    def _value_class(
        self,
        module: ModuleInfo,
        value: Optional[ast.expr],
        annotation: Optional[ast.expr],
    ) -> Optional[str]:
        """The project class an assigned value or annotation denotes."""
        if isinstance(value, ast.Call):
            name = annotation_name(value.func)
            if name is not None:
                resolved = self.resolve_class_name(module, name)
                if resolved is not None:
                    return resolved
        if annotation is not None:
            name = annotation_name(annotation)
            if name is not None:
                return self.resolve_class_name(module, name)
        return None

    # -- lookups ---------------------------------------------------------

    def resolve_class_name(
        self, module: ModuleInfo, name: str
    ) -> Optional[str]:
        """A bare class name in ``module`` -> project-class qualname."""
        imported = module.imports.get(name)
        if imported is not None and imported in self.classes:
            return imported
        local = f"{module.name}.{name}"
        if local in self.classes:
            return local
        candidates = self.class_names.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_method(
        self, cls_qual: str, method: str
    ) -> Optional[FunctionInfo]:
        """Resolve ``method`` on ``cls_qual`` walking project base classes."""
        seen: set[str] = set()
        worklist = [cls_qual]
        while worklist:
            current = worklist.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            found = info.methods.get(method)
            if found is not None:
                return found
            worklist.extend(info.bases)
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())
