"""Intraprocedural dataflow over :mod:`repro.verify.flow.cfg` graphs.

Two engines live here:

- :func:`liveness` — backward may-liveness of local names, the lattice
  behind rule REPRO008 (a ``@must_consume`` result whose definition is
  dead at the definition point was dropped);
- :func:`forward_fixpoint` — a small generic forward worklist solver,
  used by the REPRO010 typestate rule.

Compound statements appearing in a block are *headers only*: their
bodies are separate blocks, so the transfer functions read just the
header expressions (``if`` tests, ``for`` iterables, ``with`` items).
Simple statements are scanned whole — including nested lambdas and
defs, whose free-variable reads count as uses; over-counting uses only
ever silences findings, never invents them.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional, TypeVar

from repro.verify.flow.cfg import CFG

S = TypeVar("S")

_HEADER_TYPES = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.With,
    ast.AsyncWith,
    ast.Match,
)


def header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a compound statement evaluates in its own block."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return []


def _loaded_names(nodes: list[ast.expr]) -> frozenset[str]:
    names: set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return frozenset(names)


def stmt_uses(stmt: ast.stmt) -> frozenset[str]:
    """Names a block statement may read."""
    if isinstance(stmt, _HEADER_TYPES):
        return _loaded_names(header_exprs(stmt))
    names: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
        names.add(stmt.target.id)  # x += 1 reads x before writing it
    return frozenset(names)


def _target_names(target: ast.expr) -> frozenset[str]:
    names: set[str] = set()
    stack: list[ast.expr] = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
    return frozenset(names)


def stmt_defs(stmt: ast.stmt) -> frozenset[str]:
    """Names a block statement (re)binds — the liveness kill set."""
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        names: set[str] = set()
        for item in stmt.items:
            if item.optional_vars is not None:
                names |= _target_names(item.optional_vars)
        return frozenset(names)
    if isinstance(stmt, _HEADER_TYPES):
        return frozenset()
    if isinstance(stmt, ast.Assign):
        names = set()
        for target in stmt.targets:
            names |= _target_names(target)
        return frozenset(names)
    if isinstance(stmt, ast.AnnAssign):
        return _target_names(stmt.target) if stmt.value is not None else frozenset()
    if isinstance(stmt, ast.AugAssign):
        return _target_names(stmt.target)
    if isinstance(stmt, ast.Delete):
        names = set()
        for target in stmt.targets:
            names |= _target_names(target)
        return frozenset(names)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return frozenset({stmt.name})
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        names = set()
        for alias in stmt.names:
            if alias.name == "*":
                continue
            names.add(alias.asname or alias.name.split(".")[0])
        return frozenset(names)
    return frozenset()


def liveness(cfg: CFG) -> tuple[dict[int, frozenset[str]], dict[int, frozenset[str]]]:
    """Backward may-liveness; returns ``(live_in, live_out)`` per block."""
    preds = cfg.preds()
    live_in: dict[int, frozenset[str]] = {b.id: frozenset() for b in cfg.blocks}
    live_out: dict[int, frozenset[str]] = {b.id: frozenset() for b in cfg.blocks}
    worklist: list[int] = [b.id for b in cfg.blocks]
    while worklist:
        block_id = worklist.pop()
        block = cfg.blocks[block_id]
        out: frozenset[str] = frozenset().union(
            *(live_in[s] for s in block.succs)
        ) if block.succs else frozenset()
        live_out[block_id] = out
        live = set(out)
        for stmt in reversed(block.stmts):
            live -= stmt_defs(stmt)
            live |= stmt_uses(stmt)
        frozen = frozenset(live)
        if frozen != live_in[block_id]:
            live_in[block_id] = frozen
            worklist.extend(preds[block_id])
    return live_in, live_out


def live_after(
    cfg: CFG,
    live_out: dict[int, frozenset[str]],
    block_id: int,
    index: int,
) -> frozenset[str]:
    """Names live immediately *after* ``blocks[block_id].stmts[index]``."""
    block = cfg.blocks[block_id]
    live = set(live_out[block_id])
    for stmt in reversed(block.stmts[index + 1 :]):
        live -= stmt_defs(stmt)
        live |= stmt_uses(stmt)
    return frozenset(live)


def forward_fixpoint(
    cfg: CFG,
    initial: S,
    transfer: Callable[[int, S], S],
    join: Callable[[list[S]], Optional[S]],
) -> dict[int, S]:
    """Generic forward worklist solver; returns the in-state per block.

    ``transfer(block_id, state)`` maps a block's in-state to its
    out-state; ``join`` merges predecessor out-states (returning None
    for an unreachable block keeps its in-state at ``initial``). States
    are compared with ``==``, so they must be value-comparable and the
    transfer/join pair must be monotone for termination.
    """
    preds = cfg.preds()
    in_state: dict[int, S] = {b.id: initial for b in cfg.blocks}
    out_state: dict[int, S] = {
        b.id: transfer(b.id, initial) for b in cfg.blocks
    }
    worklist: list[int] = [b.id for b in cfg.blocks]
    while worklist:
        block_id = worklist.pop(0)
        incoming = [out_state[p] for p in preds[block_id]]
        merged = join(incoming) if incoming else None
        new_in = initial if merged is None else merged
        new_out = transfer(block_id, new_in)
        changed = new_in != in_state[block_id] or new_out != out_state[block_id]
        in_state[block_id] = new_in
        out_state[block_id] = new_out
        if changed:
            for succ in cfg.blocks[block_id].succs:
                if succ not in worklist:
                    worklist.append(succ)
    return in_state
