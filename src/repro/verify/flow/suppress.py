"""Inline suppression comments for the flow analyzer.

A finding is waived by ``# repro: allow[RULE]`` (comma-separated for
several rules) on the offending line or on the line directly above it.
The marker is deliberately distinct from ``# noqa`` — waiving a
whole-program finding is a stronger statement than waiving a style
nit, and it should be greppable on its own.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]*)\]")


def parse_allow(line: str) -> frozenset[str]:
    """Rule codes waived by suppression markers on one source line."""
    codes: set[str] = set()
    for match in _ALLOW_RE.finditer(line):
        for part in match.group(1).split(","):
            code = part.strip()
            if code:
                codes.add(code)
    return frozenset(codes)


def allowed_codes(source_lines: Sequence[str], lineno: int) -> frozenset[str]:
    """Codes waived at ``lineno`` (1-based): same line or the line above."""
    codes: set[str] = set()
    if 1 <= lineno <= len(source_lines):
        codes |= parse_allow(source_lines[lineno - 1])
    if 2 <= lineno <= len(source_lines) + 1:
        codes |= parse_allow(source_lines[lineno - 2])
    return frozenset(codes)


def is_suppressed(
    source_lines: Sequence[str], lineno: int, rule: str
) -> bool:
    """True when ``rule`` is waived at ``lineno`` in this file."""
    return rule in allowed_codes(source_lines, lineno)


def format_allow(codes: Iterable[str]) -> str:
    """Render a suppression comment that :func:`parse_allow` round-trips."""
    return f"# repro: allow[{','.join(sorted(set(codes)))}]"
