"""Findings, fingerprints, baselines, and output formats.

Fingerprints are stable across line-number churn: they hash the rule,
the repo-relative path, the enclosing symbol, and the message — not
the line. A baseline file is a JSON map of fingerprints that are
*known and tolerated*; the CLI subtracts it so legacy findings don't
block CI while new ones still fail the build.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  #: repo-relative POSIX path when possible
    line: int
    symbol: str  #: enclosing function qualname, module, or doc anchor
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        digest = hashlib.sha256(self.message.encode("utf-8")).hexdigest()[:16]
        raw = f"{self.rule}|{self.path}|{self.symbol}|{digest}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:24]

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


def relativize(path: Path, root: Optional[Path]) -> str:
    """``path`` as a POSIX string relative to ``root`` when underneath it."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_baseline(path: Path) -> frozenset[str]:
    """The fingerprints recorded in a baseline file (empty if absent)."""
    if not path.exists():
        return frozenset()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"{path}: not a flow baseline file")
    return frozenset(data["fingerprints"])


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as tolerated; sorted for diff-friendliness."""
    entries = {
        finding.fingerprint(): {
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
        }
        for finding in findings
    }
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(entries.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def render_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([asdict(f) for f in findings], indent=2) + "\n"


def render_sarif(
    findings: Sequence[Finding], rule_index: dict[str, str]
) -> str:
    """Minimal SARIF 2.1.0 — one run, one result per finding."""
    rules = [
        {
            "id": code,
            "shortDescription": {"text": summary},
        }
        for code, summary in sorted(rule_index.items())
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": f"[{finding.symbol}] {finding.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": max(finding.line, 1)},
                    }
                }
            ],
            "fingerprints": {"reproFlow/v1": finding.fingerprint()},
        }
        for finding in findings
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-flow",
                        "informationUri": "https://example.invalid/repro-flow",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"
