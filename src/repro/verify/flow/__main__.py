"""``python -m repro.verify.flow`` entry point."""

from repro.verify.flow.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
