"""Repo-wide call graph with heuristic method resolution.

Resolution works from a per-scope *type environment*: parameter
annotations, constructor assignments (``x = SmaltaState(...)``),
``self`` bound to the enclosing class, and aliases of typed ``self``
attributes (``trie = self.trie``). A call that cannot be pinned to a
project function produces no edge — the graph under-approximates, so
the recursion rule (REPRO007) only reports cycles it can actually
name.

The builder also computes a transitive *self-mutator* summary (which
methods mutate their receiver, directly or via ``self`` calls); rule
REPRO009 uses it to recognise trie mutation hidden behind helpers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.verify.flow.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    annotation_name,
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with enough context for the rules."""

    caller: str
    callee: str
    lineno: int
    via_self: bool  #: the receiver expression was literally ``self``


def walk_scope(body: Sequence[ast.stmt]) -> list[ast.AST]:
    """Every node under ``body`` without descending into nested defs.

    Class bodies, nested functions, and lambdas are *scopes of their
    own* — their statements must not be attributed to the enclosing
    scope by the per-scope rules. The top-level def/lambda nodes
    themselves are included (so decorators and defaults are visible);
    only their bodies are skipped.
    """
    result: list[ast.AST] = []
    stack: list[ast.AST] = list(reversed(list(body)))
    while stack:
        node = stack.pop()
        result.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack.extend(reversed(node.decorator_list))
            continue
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
    return result


def build_type_env(
    project: Project,
    module: ModuleInfo,
    body: Sequence[ast.stmt],
    cls_qual: Optional[str] = None,
    args: Optional[ast.arguments] = None,
) -> dict[str, str]:
    """Local name -> project-class qualname, flow-insensitively.

    First binding wins; a later re-assignment to an unknown type does
    not untrack the name (acceptable for the heuristic rules, which all
    err toward silence on ambiguity).
    """
    env: dict[str, str] = {}
    if cls_qual is not None:
        env["self"] = cls_qual
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            name = annotation_name(arg.annotation)
            if name is None:
                continue
            resolved = project.resolve_class_name(module, name)
            if resolved is not None:
                env.setdefault(arg.arg, resolved)
    for node in walk_scope(body):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        resolved = _rhs_class(project, module, env, value, annotation)
        if resolved is not None:
            env.setdefault(target.id, resolved)
    return env


def _rhs_class(
    project: Project,
    module: ModuleInfo,
    env: dict[str, str],
    value: Optional[ast.expr],
    annotation: Optional[ast.expr],
) -> Optional[str]:
    """The project class a right-hand side (or annotation) denotes."""
    if isinstance(value, ast.Call):
        name = annotation_name(value.func)
        if name is not None:
            resolved = project.resolve_class_name(module, name)
            if resolved is not None:
                return resolved
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        owner = env.get(value.value.id)
        if owner is not None:
            attr_cls = attr_class(project, owner, value.attr)
            if attr_cls is not None:
                return attr_cls
    if annotation is not None:
        name = annotation_name(annotation)
        if name is not None:
            return project.resolve_class_name(module, name)
    return None


def attr_class(project: Project, cls_qual: str, attr: str) -> Optional[str]:
    """The inferred class of ``<cls_qual instance>.<attr>``, MRO-aware."""
    seen: set[str] = set()
    worklist = [cls_qual]
    while worklist:
        current = worklist.pop(0)
        if current in seen:
            continue
        seen.add(current)
        info = project.classes.get(current)
        if info is None:
            continue
        found = info.attr_types.get(attr)
        if found is not None:
            return found
        worklist.extend(info.bases)
    return None


def receiver_class(
    project: Project, env: dict[str, str], expr: ast.expr
) -> Optional[str]:
    """The project class of a call receiver expression, if inferable."""
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        owner = env.get(expr.value.id)
        if owner is not None:
            return attr_class(project, owner, expr.attr)
    return None


def resolve_call(
    project: Project,
    module: ModuleInfo,
    env: dict[str, str],
    call: ast.Call,
) -> Optional[FunctionInfo]:
    """The project function a call expression targets, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        imported = module.imports.get(func.id)
        if imported is not None:
            if imported in project.functions:
                return project.functions[imported]
            if imported in project.classes:
                return project.resolve_method(imported, "__init__")
        local = f"{module.name}.{func.id}"
        if local in project.functions:
            return project.functions[local]
        if local in project.classes:
            return project.resolve_method(local, "__init__")
        return None
    if isinstance(func, ast.Attribute):
        cls_qual = receiver_class(project, env, func.value)
        if cls_qual is not None:
            return project.resolve_method(cls_qual, func.attr)
        if isinstance(func.value, ast.Name):
            target_module = module.imports.get(func.value.id)
            if target_module is not None:
                candidate = f"{target_module}.{func.attr}"
                if candidate in project.functions:
                    return project.functions[candidate]
                if candidate in project.classes:
                    return project.resolve_method(candidate, "__init__")
    return None


class CallGraph:
    """Edges between project functions plus derived summaries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: dict[str, set[str]] = {}
        self.sites: list[CallSite] = []
        self.self_mutators: frozenset[str] = frozenset()
        self.envs: dict[str, dict[str, str]] = {}

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        """Resolve every call in every project function into edges."""
        graph = cls(project)
        for func in project.iter_functions():
            module = project.modules[func.module]
            env = build_type_env(
                project, module, func.node.body, func.cls, func.node.args
            )
            graph.envs[func.qualname] = env
            for node in walk_scope(func.node.body):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolve_call(project, module, env, node)
                if callee is None:
                    continue
                via_self = (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                )
                graph.edges.setdefault(func.qualname, set()).add(callee.qualname)
                graph.sites.append(
                    CallSite(func.qualname, callee.qualname, node.lineno, via_self)
                )
        graph.self_mutators = graph._compute_self_mutators()
        return graph

    def _compute_self_mutators(self) -> frozenset[str]:
        """Methods that (transitively) write ``self`` attributes."""
        mutators: set[str] = set()
        for func in self.project.iter_functions():
            if func.cls is None:
                continue
            if _writes_self_attr(func.node.body):
                mutators.add(func.qualname)
        # Propagate through self-calls to a fixpoint.
        self_callers: dict[str, set[str]] = {}
        for site in self.sites:
            if site.via_self:
                self_callers.setdefault(site.callee, set()).add(site.caller)
        worklist = list(mutators)
        while worklist:
            callee = worklist.pop()
            for caller in self_callers.get(callee, ()):
                if caller not in mutators:
                    mutators.add(caller)
                    worklist.append(caller)
        return frozenset(mutators)

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with >1 node, plus self-loops.

        Iterative Tarjan; each component is returned sorted, and the
        component list is sorted by its first member for stable output.
        """
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        scc_stack: list[str] = []
        counter = 0
        components: list[list[str]] = []
        nodes = sorted(self.edges)
        succs = {node: sorted(self.edges.get(node, ())) for node in nodes}
        for root in nodes:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    scc_stack.append(node)
                    on_stack.add(node)
                descended = False
                children = succs.get(node, [])
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index:
                        work[-1] = (node, child_index)
                        work.append((child, 0))
                        descended = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if descended:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self.edges.get(node, set()):
                        components.append(sorted(component))
        components.sort(key=lambda comp: comp[0])
        return components


#: Methods whose *call* mutates the receiver in place — a write to
#: ``self.attr`` that never appears as an assignment statement.
_MUTATING_CONTAINER_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "setdefault",
        "sort",
    }
)


def _writes_self_attr(body: Sequence[ast.stmt]) -> bool:
    """True when any statement assigns through a ``self`` attribute."""
    for node in walk_scope(body):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_CONTAINER_METHODS
            and isinstance(node.func.value, (ast.Attribute, ast.Subscript))
        ):
            base: ast.expr = node.func.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id == "self":
                return True
        for target in targets:
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "self"
                    and base is not target
                ):
                    return True
    return False
