"""The interprocedural rule set, REPRO007 through REPRO012.

Each rule is a plain function from :class:`RuleContext` to findings;
the registry at the bottom is what the CLI iterates. All rules share
one design pressure: on *ambiguity they stay silent*. Unresolvable
calls, untyped receivers, and unknown protocols produce no findings —
a whole-program checker that cries wolf gets suppressed wholesale,
which is worse than one that under-reports.

How to add a rule: write ``def _rule_<thing>(ctx: RuleContext) ->
list[Finding]``, give it a ``REPRO0xx`` code in :data:`RULES`, add a
positive + suppressed fixture pair under ``tests/verify/flow_fixtures``
and a catalog entry in ``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

from repro.verify.cache import AnalysisCache
from repro.verify.config import SourceFile, default_metrics_docs, find_repo_root
from repro.verify.flow.callgraph import (
    CallGraph,
    build_type_env,
    resolve_call,
    walk_scope,
)
from repro.verify.flow.cfg import CFG, build_cfg
from repro.verify.flow.dataflow import (
    forward_fixpoint,
    header_exprs,
    live_after,
    liveness,
)
from repro.verify.flow.project import ModuleInfo, Project, annotation_name
from repro.verify.flow.report import Finding, relativize
from repro.verify.flow.suppress import is_suppressed


@dataclass
class RuleContext:
    """Everything a rule may consult, built once per CLI invocation."""

    project: Project
    graph: CallGraph
    root: Optional[Path]
    metrics_docs: list[Path]
    explicit_docs: bool

    def rel(self, path: Path) -> str:
        return relativize(path, self.root)


@dataclass
class Scope:
    """One analyzable statement list: a function body or a module body."""

    symbol: str
    module: ModuleInfo
    cls: Optional[str]
    body: list[ast.stmt]
    args: Optional[ast.arguments]
    path: Path
    lineno: int


def iter_scopes(project: Project) -> Iterator[Scope]:
    """Every module top level and every indexed function, in name order."""
    for name in sorted(project.modules):
        module = project.modules[name]
        yield Scope(name, module, None, list(module.tree.body), None, module.path, 1)
    for qualname in sorted(project.functions):
        func = project.functions[qualname]
        module = project.modules[func.module]
        yield Scope(
            qualname,
            module,
            func.cls,
            list(func.node.body),
            func.node.args,
            func.path,
            func.lineno,
        )


def _stmt_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Call expressions a block statement evaluates itself (header-only
    for compound statements, whose bodies are separate blocks)."""
    headers = header_exprs(stmt)
    roots: list[ast.AST] = list(headers) if headers else [stmt]
    calls: list[ast.Call] = []
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                calls.append(node)
    return calls


# -- REPRO007: call-graph recursion cycles ------------------------------


def _rule_recursion(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for component in ctx.graph.cycles():
        anchor = component[0]
        func = ctx.project.functions.get(anchor)
        if func is None:
            continue
        if len(component) == 1:
            message = (
                f"{anchor} is recursive (direct or via itself); "
                "convert to an explicit worklist (IPv6 depth overflows "
                "recursion)"
            )
        else:
            chain = " -> ".join(component + [component[0]])
            message = (
                f"recursion cycle {chain}; break the cycle with an "
                "explicit worklist"
            )
        findings.append(
            Finding("REPRO007", ctx.rel(func.path), func.lineno, anchor, message)
        )
    return findings


# -- REPRO008: dropped @must_consume results ----------------------------


def _rule_dropped_delta(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in iter_scopes(ctx.project):
        env = build_type_env(
            ctx.project, scope.module, scope.body, scope.cls, scope.args
        )
        cfg = build_cfg(scope.body)
        live_out: Optional[dict[int, frozenset[str]]] = None
        for block in cfg.blocks:
            for index, stmt in enumerate(block.stmts):
                call: Optional[ast.Call] = None
                names: frozenset[str] = frozenset()
                if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                    call = stmt.value
                elif isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call
                ):
                    if not all(isinstance(t, ast.Name) for t in stmt.targets):
                        continue  # attribute/subscript targets escape the scope
                    call = stmt.value
                    names = frozenset(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.target, ast.Name)
                ):
                    call = stmt.value
                    names = frozenset({stmt.target.id})
                if call is None:
                    continue
                callee = resolve_call(ctx.project, scope.module, env, call)
                if callee is None or "must_consume" not in callee.decorators:
                    continue
                if len(names) == 0:
                    findings.append(
                        Finding(
                            "REPRO008",
                            ctx.rel(scope.path),
                            call.lineno,
                            scope.symbol,
                            f"return value of {callee.qualname} is discarded; "
                            "the FIB delta must be consumed (use the "
                            "rebuild/discard wrapper for intentional drops)",
                        )
                    )
                    continue
                if live_out is None:
                    _, live_out = liveness(cfg)
                alive = live_after(cfg, live_out, block.id, index)
                if not names & alive:
                    joined = ", ".join(sorted(names))
                    findings.append(
                        Finding(
                            "REPRO008",
                            ctx.rel(scope.path),
                            call.lineno,
                            scope.symbol,
                            f"{joined} binds the @must_consume result of "
                            f"{callee.qualname} but is never read afterwards",
                        )
                    )
    return findings


# -- REPRO009: trie mutation during a live traversal --------------------

#: Method names that (by convention) return lazy traversals of their
#: receiver. Resolved callees marked as generators are recognised too.
GENERATOR_NAMES = frozenset(
    {"iter_nodes", "ot_entries", "at_entries", "entries", "walk", "iter_prefixes"}
)

#: Method names that (by convention) mutate their receiver. Resolved
#: callees in the call graph's transitive self-mutator summary count too.
MUTATOR_NAMES = frozenset(
    {
        "set_ot",
        "set_at",
        "set_at_node",
        "set_pi",
        "ensure",
        "prune",
        "insert",
        "delete",
        "load",
        "apply_batch",
        "snapshot",
        "rebuild",
    }
)


def _receiver_token(
    expr: ast.expr, aliases: dict[str, tuple[str, ...]]
) -> Optional[tuple[str, ...]]:
    """Canonical receiver identity: attribute chain rooted at a name,
    with local aliases (``trie = self.trie``) expanded."""
    attrs: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, (node.id,))
    return base + tuple(reversed(attrs))


def _scope_aliases(body: Sequence[ast.stmt]) -> dict[str, tuple[str, ...]]:
    """Local aliases of attribute chains, e.g. ``trie = self.trie``."""
    aliases: dict[str, tuple[str, ...]] = {}
    for node in walk_scope(body):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, (ast.Attribute, ast.Name))
        ):
            token = _receiver_token(node.value, aliases)
            if token is not None:
                aliases.setdefault(node.targets[0].id, token)
    return aliases


def _tokens_overlap(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    return longer[: len(shorter)] == shorter


def _rule_mutating_traversal(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in iter_scopes(ctx.project):
        env = build_type_env(
            ctx.project, scope.module, scope.body, scope.cls, scope.args
        )
        aliases = _scope_aliases(scope.body)
        for node in walk_scope(scope.body):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            source = node.iter
            if not isinstance(source, ast.Call) or not isinstance(
                source.func, ast.Attribute
            ):
                continue  # wrapped iterations (list(...)) are materialised
            gen_name = source.func.attr
            resolved_gen = resolve_call(ctx.project, scope.module, env, source)
            is_traversal = gen_name in GENERATOR_NAMES or (
                resolved_gen is not None and resolved_gen.is_generator
            )
            if not is_traversal:
                continue
            gen_token = _receiver_token(source.func.value, aliases)
            if gen_token is None:
                continue
            loop_nodes: list[ast.AST] = []
            for stmt in list(node.body) + list(node.orelse):
                loop_nodes.extend(walk_scope([stmt]))
            for inner in loop_nodes:
                if not isinstance(inner, ast.Call) or not isinstance(
                    inner.func, ast.Attribute
                ):
                    continue
                token = _receiver_token(inner.func.value, aliases)
                if token is None or not _tokens_overlap(token, gen_token):
                    continue
                resolved_mut = resolve_call(ctx.project, scope.module, env, inner)
                is_mutator = inner.func.attr in MUTATOR_NAMES or (
                    resolved_mut is not None
                    and resolved_mut.qualname in ctx.graph.self_mutators
                )
                if not is_mutator:
                    continue
                findings.append(
                    Finding(
                        "REPRO009",
                        ctx.rel(scope.path),
                        inner.lineno,
                        scope.symbol,
                        f"{'.'.join(token)}.{inner.func.attr}() mutates the "
                        f"structure while the traversal "
                        f"{'.'.join(gen_token)}.{gen_name}() (line "
                        f"{node.lineno}) is still live; materialise with "
                        "list(...) first",
                    )
                )
    return findings


# -- REPRO010: typestate protocols --------------------------------------


@dataclass(frozen=True)
class Protocol:
    """A small method-call DFA for one class."""

    cls_name: str
    initial: str
    watched: frozenset[str]
    transitions: dict[tuple[str, str], str]
    hint: str


PROTOCOLS: dict[str, Protocol] = {
    "SmaltaState": Protocol(
        cls_name="SmaltaState",
        initial="fresh",
        watched=frozenset(
            {"load", "insert", "delete", "apply_batch", "snapshot", "rebuild"}
        ),
        transitions={
            ("fresh", "load"): "live",
            ("fresh", "insert"): "live",
            ("fresh", "delete"): "live",
            ("fresh", "apply_batch"): "live",
            ("fresh", "snapshot"): "live",
            ("fresh", "rebuild"): "live",
            ("live", "insert"): "live",
            ("live", "delete"): "live",
            ("live", "apply_batch"): "live",
            ("live", "snapshot"): "live",
            ("live", "rebuild"): "live",
        },
        hint="load() clobbers a live trie; build a fresh SmaltaState instead",
    ),
    "DownloadChannel": Protocol(
        cls_name="DownloadChannel",
        initial="open",
        watched=frozenset({"send", "flush", "resync", "close"}),
        transitions={
            ("open", "send"): "open",
            ("open", "flush"): "open",
            ("open", "resync"): "open",
            ("open", "close"): "closed",
        },
        hint="the channel was close()d earlier on this path",
    ),
}

_TypeState = tuple[tuple[str, frozenset[str]], ...]


def _constructed_protocol_vars(
    ctx: RuleContext, scope: Scope
) -> dict[str, Protocol]:
    """Locals bound by a visible protocol-class constructor call."""
    tracked: dict[str, Protocol] = {}
    for node in walk_scope(scope.body):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            cls_name = annotation_name(node.value.func)
            if cls_name in PROTOCOLS:
                resolved = ctx.project.resolve_class_name(scope.module, cls_name)
                if resolved is not None and resolved.rsplit(".", 1)[-1] == cls_name:
                    tracked[node.targets[0].id] = PROTOCOLS[cls_name]
    return tracked


def _typestate_transfer(
    cfg: CFG,
    block_id: int,
    state: _TypeState,
    tracked: dict[str, Protocol],
    collect: Optional[list[tuple[str, str, int, frozenset[str]]]],
) -> _TypeState:
    current: dict[str, frozenset[str]] = dict(state)
    for stmt in cfg.blocks[block_id].stmts:
        constructed: Optional[str] = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id in tracked
        ):
            constructed = stmt.targets[0].id
        for call in _stmt_calls(stmt):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
            ):
                continue
            var = func.value.id
            protocol = tracked.get(var)
            if protocol is None or func.attr not in protocol.watched:
                continue
            states = current.get(var)
            if states is None:
                continue  # not yet constructed on this path
            moved = {
                protocol.transitions[(s, func.attr)]
                for s in states
                if (s, func.attr) in protocol.transitions
            }
            if not moved and len(states) > 0 and collect is not None:
                collect.append((var, func.attr, call.lineno, states))
            current[var] = frozenset(moved) if moved else states
        if constructed is not None:
            value = stmt.value if isinstance(stmt, ast.Assign) else None
            protocol = tracked[constructed]
            if isinstance(value, ast.Call):
                cls_name = annotation_name(value.func)
                if cls_name == protocol.cls_name:
                    current[constructed] = frozenset({protocol.initial})
                else:
                    current.pop(constructed, None)
            else:
                current.pop(constructed, None)
    return tuple(sorted(current.items()))


def _join_typestates(states: list[_TypeState]) -> Optional[_TypeState]:
    merged: dict[str, frozenset[str]] = {}
    for state in states:
        for var, values in state:
            merged[var] = merged.get(var, frozenset()) | values
    return tuple(sorted(merged.items()))


def _rule_typestate(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in iter_scopes(ctx.project):
        tracked = _constructed_protocol_vars(ctx, scope)
        if len(tracked) == 0:
            continue
        cfg = build_cfg(scope.body)
        in_states = forward_fixpoint(
            cfg,
            (),
            lambda b, s: _typestate_transfer(cfg, b, s, tracked, None),
            _join_typestates,
        )
        hits: list[tuple[str, str, int, frozenset[str]]] = []
        for block in cfg.blocks:
            _typestate_transfer(cfg, block.id, in_states[block.id], tracked, hits)
        seen: set[tuple[str, str, int]] = set()
        for var, method, lineno, states in hits:
            key = (var, method, lineno)
            if key in seen:
                continue
            seen.add(key)
            protocol = tracked[var]
            findings.append(
                Finding(
                    "REPRO010",
                    ctx.rel(scope.path),
                    lineno,
                    scope.symbol,
                    f"{var}.{method}() violates the {protocol.cls_name} "
                    f"protocol in state(s) {sorted(states)}: {protocol.hint}",
                )
            )
    return findings


# -- REPRO011: swallowed failure signals --------------------------------

#: Exception classes whose silent disposal hides a correctness failure.
WATCHED_EXCEPTIONS = frozenset({"ReconcileError", "AuditError", "Violation"})

_LOG_OR_METRIC_ATTRS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
        "inc",
        "dec",
        "set",
        "observe",
        "event",
        "emit",
    }
)


def _handler_exception_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return []
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: list[str] = []
    for node in types:
        name = annotation_name(node)
        if name is not None:
            names.append(name)
    return names


def _handler_disposes_properly(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "print":
                    return True
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _LOG_OR_METRIC_ATTRS
                ):
                    return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id == handler.name
            ):
                return True  # the exception object escapes (returned/stored)
    return False


def _rule_swallowed_failure(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in iter_scopes(ctx.project):
        for node in walk_scope(scope.body):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_exception_names(node)
            bare = node.type is None
            watched = [n for n in names if n in WATCHED_EXCEPTIONS]
            if not bare and len(watched) == 0:
                continue
            if _handler_disposes_properly(node):
                continue
            label = "bare except" if bare else f"except {'/'.join(watched)}"
            findings.append(
                Finding(
                    "REPRO011",
                    ctx.rel(scope.path),
                    node.lineno,
                    scope.symbol,
                    f"{label} swallows a correctness failure silently; "
                    "re-raise it, log it, or count it in a metric",
                )
            )
    return findings


# -- REPRO012: metric-name drift against the catalog docs ---------------

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})
#: A catalog row's first cell: a backticked series name. Requiring an
#: underscore keeps ordinary backticked words in unrelated tables (the
#: fault-kind table in RESILIENCE.md says `drop`, `latency`, ...) from
#: being read as metric series.
_CATALOG_ROW_RE = re.compile(r"^`([A-Za-z][A-Za-z0-9]*_[A-Za-z0-9_]*)")


def _code_metric_names(project: Project) -> dict[str, tuple[Path, int]]:
    """Series registered with string literals, plus span histograms."""
    names: dict[str, tuple[Path, int]] = {}
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if len(node.args) == 0:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            if node.func.attr in _METRIC_FACTORIES:
                names.setdefault(first.value, (module.path, node.lineno))
            elif node.func.attr == "span":
                names.setdefault(
                    f"{first.value}_seconds", (module.path, node.lineno)
                )
    return names


def _doc_metric_names(doc: Path) -> dict[str, int]:
    """Series named in the first cell of catalog table rows."""
    names: dict[str, int] = {}
    for lineno, line in enumerate(
        doc.read_text(encoding="utf-8").splitlines(), start=1
    ):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [cell.strip() for cell in stripped.strip("|").split("|")]
        if len(cells) == 0:
            continue
        match = _CATALOG_ROW_RE.match(cells[0])
        if match is not None:
            names.setdefault(match.group(1), lineno)
    return names


def _rule_metric_drift(ctx: RuleContext) -> list[Finding]:
    if len(ctx.metrics_docs) == 0:
        return []
    code_names = _code_metric_names(ctx.project)
    doc_names: dict[str, tuple[Path, int]] = {}
    for doc in ctx.metrics_docs:
        for name, lineno in _doc_metric_names(doc).items():
            doc_names.setdefault(name, (doc, lineno))
    findings: list[Finding] = []
    for name in sorted(set(code_names) - set(doc_names)):
        path, lineno = code_names[name]
        findings.append(
            Finding(
                "REPRO012",
                ctx.rel(path),
                lineno,
                name,
                f"metric series {name!r} is registered in code but missing "
                "from the catalog table(s) in "
                f"{', '.join(d.name for d in ctx.metrics_docs)}",
            )
        )
    # The reverse direction only makes sense when the scan actually
    # covers the instrumented packages (or the docs were given
    # explicitly, as the fixtures do).
    covers_code = ctx.explicit_docs or "repro.obs.registry" in ctx.project.modules
    if covers_code:
        for name in sorted(set(doc_names) - set(code_names)):
            doc, lineno = doc_names[name]
            findings.append(
                Finding(
                    "REPRO012",
                    ctx.rel(doc),
                    lineno,
                    name,
                    f"metric series {name!r} is cataloged in {doc.name} but "
                    "never registered in code",
                )
            )
    return findings


# -- registry ------------------------------------------------------------


@dataclass(frozen=True)
class RuleSpec:
    """One rule's identity and entry point."""

    code: str
    name: str
    summary: str
    run: Callable[[RuleContext], list[Finding]]


RULES: dict[str, RuleSpec] = {
    "REPRO007": RuleSpec(
        "REPRO007",
        "recursion-cycle",
        "call-graph recursion cycle (REPRO004 is its single-function "
        "fast-path alias); convert to an explicit worklist",
        _rule_recursion,
    ),
    "REPRO008": RuleSpec(
        "REPRO008",
        "dropped-delta",
        "@must_consume return value discarded or bound but never read",
        _rule_dropped_delta,
    ),
    "REPRO009": RuleSpec(
        "REPRO009",
        "mutating-traversal",
        "structure mutated while a lazy traversal of it is live",
        _rule_mutating_traversal,
    ),
    "REPRO010": RuleSpec(
        "REPRO010",
        "typestate-protocol",
        "method call violates the receiver's lifecycle protocol",
        _rule_typestate,
    ),
    "REPRO011": RuleSpec(
        "REPRO011",
        "swallowed-failure",
        "watched exception handled without re-raise, log, or metric",
        _rule_swallowed_failure,
    ),
    "REPRO012": RuleSpec(
        "REPRO012",
        "metric-drift",
        "metric series and catalog docs disagree (either direction)",
        _rule_metric_drift,
    ),
}


def analyze(
    paths: Sequence[Path],
    select: Optional[frozenset[str]] = None,
    metrics_docs: Optional[Sequence[Path]] = None,
    sources: Optional[Sequence[SourceFile]] = None,
    cache: Optional[AnalysisCache] = None,
    project: Optional[Project] = None,
    graph: Optional[CallGraph] = None,
) -> list[Finding]:
    """Run the (selected) rules over ``paths`` and return raw findings.

    Inline ``# repro: allow[...]`` suppressions are already subtracted;
    baseline subtraction is the CLI's job. ``sources``/``cache`` plug
    the shared parse pass and the content-hash cache in (see
    :mod:`repro.verify.config` and :mod:`repro.verify.cache`); a
    combined run may additionally hand in the resolved ``project`` and
    ``graph`` so symbol resolution happens once across all passes.
    """
    if project is None:
        project = Project.load(paths, sources=sources, cache=cache)
    if graph is None:
        graph = CallGraph.build(project)
    explicit = metrics_docs is not None
    docs = list(metrics_docs) if metrics_docs is not None else default_metrics_docs(paths)
    root = find_repo_root(paths[0]) if len(paths) > 0 else None
    ctx = RuleContext(project, graph, root, docs, explicit)
    findings: list[Finding] = []
    for code in sorted(RULES):
        if select is not None and code not in select:
            continue
        findings.extend(RULES[code].run(ctx))
    sources: dict[str, list[str]] = {
        ctx.rel(module.path): module.source_lines
        for module in project.modules.values()
    }
    kept = [
        finding
        for finding in findings
        if finding.path not in sources
        or not is_suppressed(sources[finding.path], finding.line, finding.rule)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept
