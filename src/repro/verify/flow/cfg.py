"""Per-function control-flow graphs.

:func:`build_cfg` lowers a statement list into basic blocks connected by
directed edges. Compound statements keep their *header* (the ``if`` test,
the ``for`` iterable, the ``with`` items) in the block where control
evaluates it; their bodies become separate blocks. ``try`` blocks are
over-approximated — every handler is reachable from the try entry — which
errs toward extra paths, i.e. toward *silence* in the downstream rules.

The builder runs on an explicit frame stack rather than recursive
descent: the analyzer is subject to the repo's own no-recursion rules
(REPRO004/REPRO007) and deep ``elif`` ladders must not overflow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence

#: ``ast.TryStar`` exists only on 3.11+; fold it in when present.
_TRY_TYPES: tuple[type, ...] = tuple(
    t for t in (ast.Try, getattr(ast, "TryStar", None)) if t is not None
)

_LOOP_TYPES = (ast.While, ast.For, ast.AsyncFor)


@dataclass
class Block:
    """A basic block: a run of statements with a single entry point."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """A control-flow graph with dedicated entry and exit blocks."""

    blocks: list[Block]
    entry: int
    exit: int

    def preds(self) -> dict[int, list[int]]:
        """Predecessor lists, derived from the successor edges."""
        result: dict[int, list[int]] = {block.id: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                result[succ].append(block.id)
        return result

    def locate(self) -> dict[int, tuple[int, int]]:
        """Map ``id(stmt)`` -> ``(block_id, index)`` for every statement."""
        table: dict[int, tuple[int, int]] = {}
        for block in self.blocks:
            for index, stmt in enumerate(block.stmts):
                table[id(stmt)] = (block.id, index)
        return table


@dataclass
class _Frame:
    """One statement list being lowered, with its control context."""

    stmts: Sequence[ast.stmt]
    index: int
    current: int
    follow: int
    loop_head: Optional[int]
    loop_after: Optional[int]


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Lower ``body`` (a function or module statement list) to a CFG."""
    blocks: list[Block] = []

    def new_block() -> int:
        block = Block(len(blocks))
        blocks.append(block)
        return block.id

    def edge(src: int, dst: int) -> None:
        if dst not in blocks[src].succs:
            blocks[src].succs.append(dst)

    entry = new_block()
    exit_ = new_block()
    stack: list[_Frame] = [_Frame(list(body), 0, entry, exit_, None, None)]
    while stack:
        frame = stack.pop()
        stmts = frame.stmts
        i = frame.index
        cur = frame.current
        split = False
        while i < len(stmts):
            stmt = stmts[i]
            if isinstance(stmt, ast.If):
                blocks[cur].stmts.append(stmt)
                after = new_block()
                then_entry = new_block()
                edge(cur, then_entry)
                stack.append(
                    _Frame(
                        stmts, i + 1, after, frame.follow,
                        frame.loop_head, frame.loop_after,
                    )
                )
                stack.append(
                    _Frame(
                        stmt.body, 0, then_entry, after,
                        frame.loop_head, frame.loop_after,
                    )
                )
                if stmt.orelse:
                    else_entry = new_block()
                    edge(cur, else_entry)
                    stack.append(
                        _Frame(
                            stmt.orelse, 0, else_entry, after,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                else:
                    edge(cur, after)
                split = True
                break
            if isinstance(stmt, _LOOP_TYPES):
                head = new_block()
                blocks[head].stmts.append(stmt)
                edge(cur, head)
                body_entry = new_block()
                edge(head, body_entry)
                after = new_block()
                if stmt.orelse:
                    else_entry = new_block()
                    edge(head, else_entry)
                    stack.append(
                        _Frame(
                            stmt.orelse, 0, else_entry, after,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                else:
                    edge(head, after)
                stack.append(
                    _Frame(
                        stmts, i + 1, after, frame.follow,
                        frame.loop_head, frame.loop_after,
                    )
                )
                stack.append(_Frame(stmt.body, 0, body_entry, head, head, after))
                split = True
                break
            if isinstance(stmt, _TRY_TYPES):
                body_entry = new_block()
                edge(cur, body_entry)
                after = new_block()
                if stmt.finalbody:
                    tail = new_block()
                    stack.append(
                        _Frame(
                            stmt.finalbody, 0, tail, after,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                else:
                    tail = after
                for handler in stmt.handlers:
                    handler_entry = new_block()
                    edge(body_entry, handler_entry)
                    stack.append(
                        _Frame(
                            handler.body, 0, handler_entry, tail,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                if stmt.orelse:
                    else_entry = new_block()
                    stack.append(
                        _Frame(
                            stmt.body, 0, body_entry, else_entry,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                    stack.append(
                        _Frame(
                            stmt.orelse, 0, else_entry, tail,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                else:
                    stack.append(
                        _Frame(
                            stmt.body, 0, body_entry, tail,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                stack.append(
                    _Frame(
                        stmts, i + 1, after, frame.follow,
                        frame.loop_head, frame.loop_after,
                    )
                )
                split = True
                break
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                blocks[cur].stmts.append(stmt)
                body_entry = new_block()
                edge(cur, body_entry)
                after = new_block()
                stack.append(
                    _Frame(
                        stmts, i + 1, after, frame.follow,
                        frame.loop_head, frame.loop_after,
                    )
                )
                stack.append(
                    _Frame(
                        stmt.body, 0, body_entry, after,
                        frame.loop_head, frame.loop_after,
                    )
                )
                split = True
                break
            if isinstance(stmt, ast.Match):
                blocks[cur].stmts.append(stmt)
                after = new_block()
                for case in stmt.cases:
                    case_entry = new_block()
                    edge(cur, case_entry)
                    stack.append(
                        _Frame(
                            case.body, 0, case_entry, after,
                            frame.loop_head, frame.loop_after,
                        )
                    )
                edge(cur, after)
                stack.append(
                    _Frame(
                        stmts, i + 1, after, frame.follow,
                        frame.loop_head, frame.loop_after,
                    )
                )
                split = True
                break
            # Simple statements stay in the current block.
            blocks[cur].stmts.append(stmt)
            if isinstance(stmt, (ast.Return, ast.Raise)):
                edge(cur, exit_)
                cur = new_block()  # anything after is unreachable
            elif isinstance(stmt, ast.Break):
                edge(cur, frame.loop_after if frame.loop_after is not None else exit_)
                cur = new_block()
            elif isinstance(stmt, ast.Continue):
                edge(cur, frame.loop_head if frame.loop_head is not None else exit_)
                cur = new_block()
            i += 1
        if not split:
            edge(cur, frame.follow)
    return CFG(blocks=blocks, entry=entry, exit=exit_)
