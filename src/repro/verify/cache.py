"""Content-hash incremental cache shared by lint, flow, and effects.

Every analysis front end ultimately starts from the same expensive
inputs: read a file, ``ast.parse`` it, and derive per-file artifacts
(lint findings, direct effect summaries). :class:`AnalysisCache` keys
those artifacts by the SHA-256 of the file *content* (salted with a
cache-format version), so a warm run re-analyzes only files whose bytes
actually changed — ``git checkout``, ``touch``, and CI cache restores
cannot invalidate it spuriously, because no timestamps are involved.

Layout on disk::

    .repro-cache/
        ast/<digest>.pkl        pickled ast.Module
        lint/<digest>.pkl       list[LintError] for one file
        effects/<digest>.pkl    per-function direct EffectSite tuples

Entries are written atomically (temp file + ``os.replace``) and any
unreadable or corrupt entry degrades to a cache miss — the cache can be
deleted or truncated at any time without affecting correctness, only
warm-run speed. Hit/miss counters live on the instance so CLIs can
prove a warm run skipped unchanged files.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Optional

#: Bump whenever the shape of any cached artifact changes; the version
#: participates in every content digest, so stale formats simply miss.
CACHE_VERSION = 1

#: Directory name of the cache at the repo root.
CACHE_DIR_NAME = ".repro-cache"

#: Setting this environment variable to a non-empty value disables all
#: caching (useful to rule the cache out when debugging the analyzers).
DISABLE_ENV = "REPRO_NO_CACHE"


def content_key(text: str, *extra: str) -> str:
    """SHA-256 digest of ``text`` salted with the cache version.

    ``extra`` components fold additional invalidation inputs into the
    key (e.g. the module name, or a digest of cross-file context a
    per-file artifact depends on).
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_VERSION}".encode("utf-8"))
    for part in extra:
        hasher.update(b"\x00")
        hasher.update(part.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(text.encode("utf-8"))
    return hasher.hexdigest()


class AnalysisCache:
    """A content-addressed pickle store under one directory."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    @classmethod
    def for_root(cls, root: Path) -> Optional["AnalysisCache"]:
        """The cache under ``root``, or None when disabled by env."""
        if os.environ.get(DISABLE_ENV):
            return None
        return cls(root / CACHE_DIR_NAME)

    def _entry_path(self, kind: str, key: str) -> Path:
        return self.directory / kind / f"{key}.pkl"

    def load(self, kind: str, key: str) -> Optional[object]:
        """The stored object, or None on a miss (absent or corrupt)."""
        entry = self._entry_path(kind, key)
        try:
            payload = entry.read_bytes()
            value = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, kind: str, key: str, value: object) -> None:
        """Persist ``value`` atomically; IO failures are non-fatal."""
        entry = self._entry_path(kind, key)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp = entry.with_name(f"{entry.name}.{os.getpid()}.tmp")
            tmp.write_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, entry)
        except OSError:
            pass  # a read-only checkout still analyzes correctly, just cold

    def stats(self) -> str:
        """One-line hit/miss summary for CLI ``--stats`` output."""
        total = self.hits + self.misses
        return f"cache: {self.hits} hit(s), {self.misses} miss(es) of {total}"
