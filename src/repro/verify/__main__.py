"""``python -m repro.verify`` entry point (the combined run)."""

import sys

from repro.verify.cli import main

if __name__ == "__main__":
    sys.exit(main())
