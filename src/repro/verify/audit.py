"""Self-checking (sanitizer) mode for the SMALTA manager.

:class:`AuditConfig` describes *when* the invariant auditor runs inline
inside :class:`~repro.core.manager.SmaltaManager` and *what happens* on
a violation. The modes mirror how sanitizers are deployed: off in the
fastest production builds, every-N-updates while qualifying a change,
every-snapshot as a cheap always-on tripwire (a snapshot already costs a
full ORTC pass, so one extra trie walk is noise).

The stateful Hypothesis tests and the examples flip this on; the
benchmark suite measures its overhead (``benchmarks/test_bench_micro``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.verify.invariants import Violation, audit_state

if TYPE_CHECKING:
    from repro.core.smalta import SmaltaState

logger = logging.getLogger("repro.verify")


class AuditError(AssertionError):
    """Raised by audit mode when the inline auditor finds violations."""

    def __init__(self, trigger: str, violations: list[Violation]) -> None:
        self.trigger = trigger
        self.violations = violations
        lines = "; ".join(str(v) for v in violations)
        super().__init__(
            f"audit after {trigger} found {len(violations)} violation(s): {lines}"
        )


@dataclass(frozen=True)
class AuditConfig:
    """When to run the inline auditor and how to react.

    - ``every_updates`` — audit after every N incorporated updates
      (None disables the per-update trigger);
    - ``on_snapshot`` — audit right after each completed snapshot;
    - ``check_optimal_after_snapshot`` — additionally assert post-ORTC
      label minimality on the snapshot trigger (never on the per-update
      trigger, where transient redundancy is expected);
    - ``raise_on_violation`` — raise :class:`AuditError` (the test-suite
      mode); False logs through the ``repro.verify`` logger and keeps
      forwarding (the production mode).
    """

    every_updates: Optional[int] = None
    on_snapshot: bool = False
    check_optimal_after_snapshot: bool = False
    raise_on_violation: bool = True

    def __post_init__(self) -> None:
        if self.every_updates is not None and self.every_updates < 1:
            raise ValueError("every_updates must be >= 1 (or None)")

    # -- constructors ---------------------------------------------------

    @classmethod
    def off(cls) -> "AuditConfig":
        """No inline auditing (the default production configuration)."""
        return cls()

    @classmethod
    def every(
        cls, updates: int, raise_on_violation: bool = True
    ) -> "AuditConfig":
        """Audit every ``updates`` incorporated updates and every snapshot."""
        return cls(
            every_updates=updates,
            on_snapshot=True,
            raise_on_violation=raise_on_violation,
        )

    @classmethod
    def each_snapshot(cls, raise_on_violation: bool = True) -> "AuditConfig":
        """Audit only after snapshots (the cheap always-on tripwire)."""
        return cls(
            on_snapshot=True,
            check_optimal_after_snapshot=True,
            raise_on_violation=raise_on_violation,
        )

    @property
    def enabled(self) -> bool:
        return self.every_updates is not None or self.on_snapshot

    # -- execution ------------------------------------------------------

    def run(self, state: "SmaltaState", trigger: str) -> list[Violation]:
        """Audit ``state`` now; react per configuration.

        ``trigger`` is ``"update"`` or ``"snapshot"`` (used both to pick
        the check set and to label the report). Returns the violations
        so a logging-mode caller can still inspect them.
        """
        violations = audit_state(
            state,
            optimal=(trigger == "snapshot" and self.check_optimal_after_snapshot),
        )
        if violations:
            if self.raise_on_violation:
                raise AuditError(trigger, violations)
            for violation in violations:
                logger.error("audit after %s: %s", trigger, violation)
        return violations
