"""Machine-enforced correctness tooling for the SMALTA core.

The paper reports that the authors "automatically computed the
correctness of millions of updated aggregated tables"; this package is
that machinery, grown into three layers:

- :mod:`repro.verify.invariants` — a structural auditor that walks the
  OT/AT union trie once and checks the bookkeeping invariants the
  incremental algorithms rely on (preimage pointers, the reverse
  deaggregate index, label consistency, semantic equivalence), reporting
  :class:`~repro.verify.invariants.Violation` records instead of bare
  asserts;
- :mod:`repro.verify.audit` — the sanitizer-style self-checking mode:
  :class:`~repro.verify.audit.AuditConfig` plugs the auditor into
  :class:`~repro.core.manager.SmaltaManager` (off / every-N-updates /
  every-snapshot), raising :class:`~repro.verify.audit.AuditError` or
  logging on violation;
- :mod:`repro.verify.lint` — a repo-specific AST lint pass
  (``python -m repro.verify.lint src/``) enforcing the structural rules
  that keep the hot paths safe to refactor (``__slots__`` on node
  classes, no trie-bookkeeping writes outside ``core/``, no wall-clock
  reads in algorithm code, no recursion in trie walkers, annotations on
  public ``core/`` functions, no truthiness tests on ``__len__``-bearing
  objects).

See ``docs/VERIFICATION.md`` for the full invariant catalogue.
"""

from repro.verify.audit import AuditConfig, AuditError
from repro.verify.invariants import (
    InvariantCode,
    Violation,
    audit_state,
    audit_trie,
)

__all__ = [
    "AuditConfig",
    "AuditError",
    "InvariantCode",
    "Violation",
    "audit_state",
    "audit_trie",
]
