"""Machine-enforced correctness tooling for the SMALTA core.

The paper reports that the authors "automatically computed the
correctness of millions of updated aggregated tables"; this package is
that machinery, grown into five layers:

- :mod:`repro.verify.invariants` — a structural auditor that walks the
  OT/AT union trie once and checks the bookkeeping invariants the
  incremental algorithms rely on (preimage pointers, the reverse
  deaggregate index, label consistency, semantic equivalence), reporting
  :class:`~repro.verify.invariants.Violation` records instead of bare
  asserts;
- :mod:`repro.verify.audit` — the sanitizer-style self-checking mode:
  :class:`~repro.verify.audit.AuditConfig` plugs the auditor into
  :class:`~repro.core.manager.SmaltaManager` (off / every-N-updates /
  every-snapshot), raising :class:`~repro.verify.audit.AuditError` or
  logging on violation;
- :mod:`repro.verify.lint` — a repo-specific AST lint pass
  (``python -m repro.verify.lint src/``) enforcing the structural rules
  that keep the hot paths safe to refactor (``__slots__`` on node
  classes, no trie-bookkeeping writes outside ``core/``, no wall-clock
  reads in algorithm code, no recursion in trie walkers, annotations on
  public ``core/`` functions, no truthiness tests on ``__len__``-bearing
  objects);
- :mod:`repro.verify.flow` — the whole-program flow analyzer
  (``python -m repro.verify.flow src/repro examples``): a repo-wide
  call graph plus per-function CFG dataflow, running interprocedural
  rules REPRO007–REPRO012 (recursion cycles, dropped ``@must_consume``
  deltas, mutation during live traversals, typestate protocols,
  swallowed failures, metric-catalog drift). REPRO004 in the lint layer
  is its single-function fast-path alias;
- :mod:`repro.verify.effects` — the concurrency-readiness analyzer
  (``python -m repro.verify.effects src/repro examples``): bottom-up
  interprocedural effect/purity inference over the same call graph,
  running rules REPRO013–REPRO017 (blocking-in-async, determinism-seam
  bypass, shard-escape, un-picklable captures, impure snapshot paths).

The three static layers share a single parse pass and a content-hash
incremental cache (``.repro-cache/``), and run combined as
``python -m repro.verify`` with one merged report.

See ``docs/VERIFICATION.md`` for the full invariant and rule catalogue.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from repro.verify.audit import AuditConfig, AuditError
    from repro.verify.invariants import (
        InvariantCode,
        Violation,
        audit_state,
        audit_trie,
    )

__all__ = [
    "AuditConfig",
    "AuditError",
    "InvariantCode",
    "Violation",
    "audit_state",
    "audit_trie",
]

#: Which sibling module provides each lazily re-exported name.
_EXPORTS = {
    "AuditConfig": "repro.verify.audit",
    "AuditError": "repro.verify.audit",
    "InvariantCode": "repro.verify.invariants",
    "Violation": "repro.verify.invariants",
    "audit_state": "repro.verify.invariants",
    "audit_trie": "repro.verify.invariants",
}


def __getattr__(name: str) -> object:
    """Resolve the public surface lazily (PEP 562).

    The auditor modules import ``repro.core``, while ``repro.core``
    imports :mod:`repro.verify.markers` for the ``@must_consume``
    contract marker; deferring the auditor imports keeps that pair of
    dependencies acyclic.
    """
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
