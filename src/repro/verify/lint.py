"""Repo-specific static checks for the SMALTA codebase.

``python -m repro.verify.lint src/`` walks the given files or directories
and enforces the structural rules that keep the hot paths safe to
refactor aggressively:

- **REPRO001** ``missing-slots`` — trie/FIB node classes (name ending in
  ``Node``) must declare ``__slots__``; a stray ``__dict__`` per node
  multiplies resident memory on million-entry tables.
- **REPRO002** ``trie-write-outside-core`` — only ``repro/core`` may
  assign the trie bookkeeping attributes (``d_o``, ``d_a``, ``pi``,
  ``deaggs``); everything else must go through the ``FibTrie`` API so
  the AT observer and the reverse deaggregate index stay consistent.
- **REPRO003** ``wall-clock-call`` — no ``time.time()`` /
  ``datetime.now()``-style reads in library code; clocks are injected
  (see ``SmaltaManager(clock=...)``) so experiments replay
  deterministically.
- **REPRO004** ``recursive-walker`` — no self-recursive functions:
  trie walkers recursing per bit overflow the interpreter stack at
  width 128 (IPv6); use an explicit stack. This is the *fast-path
  alias* of flow rule **REPRO007**: it catches only direct
  self-recursion in a single file, while ``python -m repro.verify.flow``
  builds the repo-wide call graph and also flags mutual recursion
  (``a -> b -> a`` walkers) this pass provably cannot see.
- **REPRO005** ``untyped-public`` — public functions and methods in
  ``repro/core``, ``repro/net``, ``repro/verify``, ``repro/fib`` and
  ``repro/router`` must annotate every parameter and the return type
  (the ``mypy --strict`` floor).
- **REPRO006** ``falsy-len-guard`` — no truthiness tests on parameters
  whose annotated type defines ``__len__`` (e.g. ``DownloadLog``): an
  empty-but-present object is falsy, so ``log or DownloadLog()``
  silently drops a caller-supplied log. Test ``is not None`` or
  ``len(...)`` explicitly.

A finding can be waived with a ``# noqa: REPROnnn`` comment on the
offending line. Exit status is 0 when clean, 1 when findings remain.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.verify.cache import AnalysisCache, content_key
from repro.verify.config import (
    ANNOTATED_PACKAGES,
    SourceFile,
    default_cache,
    load_sources,
    package_parts,
)

RULES: dict[str, str] = {
    "REPRO001": "node class must declare __slots__",
    "REPRO002": "trie bookkeeping attribute written outside repro/core",
    "REPRO003": "wall-clock read in library code (inject a clock instead)",
    "REPRO004": (
        "self-recursive walker (use an explicit stack); fast-path alias "
        "of flow rule REPRO007, which also catches mutual recursion"
    ),
    "REPRO005": "public function missing parameter or return annotations",
    "REPRO006": "truthiness test on a __len__-bearing object",
}

#: The SmaltaState bookkeeping only repro/core may mutate directly.
TRIE_ATTRS = frozenset({"d_o", "d_a", "pi", "deaggs"})

#: Calls that read the wall clock, as (qualifier, attribute) pairs.
WALL_CLOCK = frozenset(
    {
        ("time", "time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

@dataclass(frozen=True)
class LintError:
    """One finding, formatted like a compiler diagnostic."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def collect_len_classes(trees: Iterable[ast.Module]) -> set[str]:
    """Names of classes (anywhere in the scanned set) defining ``__len__``."""
    names: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and any(
                isinstance(item, ast.FunctionDef) and item.name == "__len__"
                for item in node.body
            ):
                names.add(node.name)
    return names


def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """The plain class name an annotation resolves to, unwrapping
    ``Optional[X]`` and ``X | None``; None when it is not that shape."""
    while annotation is not None:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
            continue
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if (isinstance(base, ast.Name) and base.id == "Optional") or (
                isinstance(base, ast.Attribute) and base.attr == "Optional"
            ):
                annotation = annotation.slice
                continue
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            left = annotation.left
            if isinstance(left, ast.Constant) and left.value is None:
                annotation = annotation.right
            else:
                annotation = left
            continue
        return None
    return None


class _FileLinter(ast.NodeVisitor):
    """One pass over one module; accumulates findings in ``errors``."""

    def __init__(
        self, path: Path, tree: ast.Module, len_classes: set[str]
    ) -> None:
        self.path = path
        self.len_classes = len_classes
        self.errors: list[LintError] = []
        parts = package_parts(path)
        self.in_core = bool(parts) and parts[0] == "core"
        self.needs_annotations = bool(parts) and parts[0] in ANNOTATED_PACKAGES
        #: Enclosing function names (for REPRO004).
        self.func_stack: list[str] = []
        #: Enclosing class names (for REPRO005 privacy).
        self.class_stack: list[str] = []
        #: Per-function map of parameter name -> __len__-bearing class.
        self.len_params: list[dict[str, str]] = []
        self.tree = tree

    # -- helpers --------------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.errors.append(
            LintError(
                str(self.path),
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    # -- REPRO001: __slots__ on node classes ----------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith("Node"):
            has_slots = any(
                (
                    isinstance(item, ast.Assign)
                    and any(
                        isinstance(target, ast.Name) and target.id == "__slots__"
                        for target in item.targets
                    )
                )
                or (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.target.id == "__slots__"
                )
                for item in node.body
            )
            if not has_slots:
                self.report(
                    node,
                    "REPRO001",
                    f"node class {node.name} must declare __slots__",
                )
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    # -- REPRO002: bookkeeping writes confined to core ------------------

    def _check_attr_write(self, target: ast.expr) -> None:
        if (
            not self.in_core
            and isinstance(target, ast.Attribute)
            and target.attr in TRIE_ATTRS
        ):
            self.report(
                target,
                "REPRO002",
                f"write to trie attribute .{target.attr} outside repro/core "
                "(use the FibTrie API)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_attr_write(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_attr_write(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_attr_write(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_attr_write(target)
        self.generic_visit(node)

    # -- REPRO003 + REPRO004: calls -------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            qualifier = func.value
            qual_name = None
            if isinstance(qualifier, ast.Name):
                qual_name = qualifier.id
            elif isinstance(qualifier, ast.Attribute):
                qual_name = qualifier.attr
            if qual_name is not None and (qual_name, func.attr) in WALL_CLOCK:
                self.report(
                    node,
                    "REPRO003",
                    f"{qual_name}.{func.attr}() reads the wall clock; "
                    "inject a clock callable instead",
                )
            if (
                isinstance(qualifier, ast.Name)
                and qualifier.id == "self"
                and func.attr in self.func_stack
            ):
                self.report(
                    node,
                    "REPRO004",
                    f"method {func.attr} calls itself; convert to an "
                    "explicit stack (IPv6 depth overflows recursion)",
                )
        elif isinstance(func, ast.Name) and func.id in self.func_stack:
            self.report(
                node,
                "REPRO004",
                f"function {func.id} calls itself; convert to an "
                "explicit stack (IPv6 depth overflows recursion)",
            )
        self.generic_visit(node)

    # -- REPRO005 + REPRO006 setup: function definitions ----------------

    def _is_public(self, node: ast.FunctionDef) -> bool:
        if node.name.startswith("_"):
            return False
        if any(name.startswith("_") for name in self.class_stack):
            return False
        return not self.func_stack  # nested helpers are not public API

    def _check_annotations(self, node: ast.FunctionDef) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                self.report(
                    node,
                    "REPRO005",
                    f"parameter {arg.arg!r} of public function "
                    f"{node.name} lacks a type annotation",
                )
        for arg in args.kwonlyargs + [a for a in (args.vararg, args.kwarg) if a]:
            if arg.annotation is None:
                self.report(
                    node,
                    "REPRO005",
                    f"parameter {arg.arg!r} of public function "
                    f"{node.name} lacks a type annotation",
                )
        if node.returns is None:
            self.report(
                node,
                "REPRO005",
                f"public function {node.name} lacks a return annotation",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self.needs_annotations and self._is_public(node):
            self._check_annotations(node)
        tracked: dict[str, str] = {}
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = _annotation_class(arg.annotation)
            if cls is not None and cls in self.len_classes:
                tracked[arg.arg] = cls
        self.func_stack.append(node.name)
        self.len_params.append(tracked)
        self.generic_visit(node)
        self.len_params.pop()
        self.func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- REPRO006: truthiness on __len__-bearing parameters -------------

    def _check_truthiness(self, test: ast.expr) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if not isinstance(test, ast.Name) or not self.len_params:
            return
        cls = self.len_params[-1].get(test.id)
        if cls is not None:
            self.report(
                test,
                "REPRO006",
                f"{test.id!r} is a {cls} (defines __len__): an empty one "
                "is falsy; test `is not None` or len() explicitly",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._check_truthiness(node.test)
        self.generic_visit(node)

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        for value in node.values:
            self._check_truthiness(value)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        for test in node.ifs:
            self._check_truthiness(test)
        self.generic_visit(node)


def _waived(source_lines: list[str], error: LintError) -> bool:
    """True when the offending line carries a matching ``# noqa``."""
    if not 1 <= error.line <= len(source_lines):
        return False
    line = source_lines[error.line - 1]
    marker = line.rfind("# noqa")
    if marker < 0:
        return False
    tail = line[marker + len("# noqa") :].strip()
    if not tail.startswith(":"):
        return True  # bare `# noqa` waives everything on the line
    return error.code in tail[1:].replace(",", " ").split()


def lint_paths(
    paths: Sequence[Path],
    select: Optional[set[str]] = None,
    sources: Optional[Sequence[SourceFile]] = None,
    cache: Optional[AnalysisCache] = None,
) -> list[LintError]:
    """Lint every Python file under ``paths``; returns surviving findings.

    ``sources`` lets a combined run (``python -m repro.verify``) hand in
    the files it already parsed, so lint adds no second parse pass. A
    ``cache`` additionally reuses per-file findings across runs: the key
    covers the file content, its path, and the repo-wide set of
    ``__len__``-bearing class names REPRO006 depends on, so any input
    that could change a finding also changes the key.
    """
    if sources is None:
        sources = load_sources(paths, cache)
    len_classes = collect_len_classes(sf.tree for sf in sources)
    len_digest = content_key(",".join(sorted(len_classes)))
    errors: list[LintError] = []
    for source in sources:
        raw: Optional[list[LintError]] = None
        key = ""
        if cache is not None:
            key = content_key(source.text, "lint", str(source.path), len_digest)
            cached = cache.load("lint", key)
            if isinstance(cached, list):
                raw = cached
        if raw is None:
            linter = _FileLinter(source.path, source.tree, len_classes)
            linter.visit(source.tree)
            raw = linter.errors
            if cache is not None:
                cache.store("lint", key, raw)
        for error in raw:
            if select is not None and error.code not in select:
                continue
            if not _waived(source.lines, error):
                errors.append(error)
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.lint",
        description="SMALTA repo-specific lint rules (REPRO001-REPRO006).",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories")
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to enable (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for code, description in sorted(RULES.items()):
            print(f"{code}: {description}")
        return 0
    if len(options.paths) == 0:
        parser.error("at least one path is required")
    select = (
        {code.strip() for code in options.select.split(",")}
        if options.select
        else None
    )
    errors = lint_paths(options.paths, select, cache=default_cache(options.paths))
    for error in sorted(errors, key=lambda e: (e.path, e.line, e.col)):
        print(error)
    if errors:
        print(f"{len(errors)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
