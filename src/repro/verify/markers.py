"""Zero-cost source annotations consumed by the flow analyzer.

The markers here change nothing at runtime — they exist so the
whole-program engine (:mod:`repro.verify.flow`) can recognise API
contracts structurally instead of hard-coding qualified names.

This module must stay dependency-free: it is imported by
``repro.core`` (the algorithmic layer), and anything heavier would
create an import cycle through ``repro.verify``'s auditor, which itself
imports the core.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def must_consume(func: F) -> F:
    """Mark ``func``'s return value as one the caller may not drop.

    Rule **REPRO008** (dropped-delta) flags any call site where the
    returned value's definition reaches function exit without a use.
    The canonical subjects are the FIB-download deltas produced by
    ``SmaltaState.insert/delete/apply_batch/snapshot`` and
    ``diff_tables``: a dropped delta is a kernel that silently diverges
    from the aggregated table.

    Deliberate discards go through a consuming wrapper API (e.g.
    ``SmaltaState.rebuild`` / ``SmaltaManager.rebuild_at``) so the
    intent is visible in the type system, not through suppression
    comments.

    The decorator itself is the identity function — zero overhead, no
    wrapping, ``func is must_consume(func)``.
    """
    return func


def shard_entry(func: F) -> F:
    """Mark ``func`` as a shard-parallel entry point.

    Rule **REPRO015** (shard escape) treats every function so marked —
    alongside the public ``SmaltaManager`` methods — as code that may run
    concurrently on disjoint shards: a module-level mutable written from
    two or more entry points is state that escapes the shard partition
    and is reported. The canonical subjects are the per-shard ORTC
    snapshot workers (:mod:`repro.core.shards`), which a process pool
    executes with no shared interpreter state at all.

    Identity at runtime, like :func:`must_consume`.
    """
    return func
