"""Zero-cost source annotations consumed by the flow analyzer.

The markers here change nothing at runtime — they exist so the
whole-program engine (:mod:`repro.verify.flow`) can recognise API
contracts structurally instead of hard-coding qualified names.

This module must stay dependency-free: it is imported by
``repro.core`` (the algorithmic layer), and anything heavier would
create an import cycle through ``repro.verify``'s auditor, which itself
imports the core.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def must_consume(func: F) -> F:
    """Mark ``func``'s return value as one the caller may not drop.

    Rule **REPRO008** (dropped-delta) flags any call site where the
    returned value's definition reaches function exit without a use.
    The canonical subjects are the FIB-download deltas produced by
    ``SmaltaState.insert/delete/apply_batch/snapshot`` and
    ``diff_tables``: a dropped delta is a kernel that silently diverges
    from the aggregated table.

    Deliberate discards go through a consuming wrapper API (e.g.
    ``SmaltaState.rebuild`` / ``SmaltaManager.rebuild_at``) so the
    intent is visible in the type system, not through suppression
    comments.

    The decorator itself is the identity function — zero overhead, no
    wrapping, ``func is must_consume(func)``.
    """
    return func
