"""Shared file-discovery and package-scope configuration for the
verification passes.

Both static-analysis front ends — the per-file AST lint
(:mod:`repro.verify.lint`) and the whole-program flow engine
(:mod:`repro.verify.flow`) — walk the same source tree and agree on
which packages sit inside which enforcement perimeter. This module is
that single source of truth; keeping it out of ``lint.py`` lets the
flow engine import it without dragging the lint visitor along.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.verify.cache import AnalysisCache, content_key

#: Packages (under ``repro/``) whose public functions must be fully
#: annotated (lint rule REPRO005) — the ``mypy --strict`` floor.
ANNOTATED_PACKAGES: tuple[str, ...] = (
    "core",
    "net",
    "verify",
    "fib",
    "router",
    "bgp",
    "workloads",
    "obs",
    "faults",
)


def package_parts(path: Path) -> tuple[str, ...]:
    """The path components after the last ``repro`` directory, if any."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1 :]
    return parts


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Every analyzable ``.py`` file under ``paths``, sorted, deduplicated.

    Directories are walked recursively; ``__pycache__`` and egg-info
    trees are skipped. Explicit file arguments are kept only when they
    end in ``.py``.
    """
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = [
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.endswith(".egg-info") for part in p.parts)
            ]
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def module_name(path: Path) -> str:
    """The dotted import name a file would have, inferred structurally.

    Walks up from the file while ``__init__.py`` markers are present, so
    ``src/repro/core/smalta.py`` maps to ``repro.core.smalta`` and a
    bare script maps to its stem. Robust for fixture trees in temporary
    directories, which is what the engine's tests feed it.
    """
    resolved = path.resolve()
    parts = [resolved.stem]
    current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    if parts[0] == "__init__":
        parts = parts[1:]
        if not parts:
            return resolved.parent.name
    return ".".join(reversed(parts))


def find_repo_root(start: Path) -> Optional[Path]:
    """The nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    while True:
        if (current / "pyproject.toml").exists():
            return current
        if current.parent == current:
            return None
        current = current.parent


@dataclass
class SourceFile:
    """One file read and parsed exactly once, shared by every pass.

    ``digest`` is the cache key of the content (see
    :func:`repro.verify.cache.content_key`); per-file artifacts derived
    downstream (lint findings, effect summaries) key off it so they
    survive between runs while the content does.
    """

    path: Path
    name: str  #: dotted module name (structural inference)
    text: str
    tree: ast.Module
    lines: list[str]
    digest: str


def load_sources(
    paths: Sequence[Path], cache: Optional[AnalysisCache] = None
) -> list[SourceFile]:
    """Read and parse every file under ``paths`` exactly once.

    This is the single parse pass the lint, flow, and effects front
    ends all consume — handing the returned list to each of them means
    one combined run touches each file's bytes once. With a ``cache``,
    parsed ASTs are reused across *runs* as well: an unchanged file's
    tree is unpickled instead of re-parsed, and a changed file misses
    (content hash) and is parsed fresh.
    """
    sources: list[SourceFile] = []
    for path in collect_files(paths):
        text = path.read_text(encoding="utf-8")
        digest = content_key(text)
        tree: Optional[ast.Module] = None
        if cache is not None:
            cached = cache.load("ast", digest)
            if isinstance(cached, ast.Module):
                tree = cached
        if tree is None:
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:
                raise SystemExit(f"{path}: syntax error: {exc}") from exc
            if cache is not None:
                cache.store("ast", digest, tree)
        sources.append(
            SourceFile(
                path=path,
                name=module_name(path),
                text=text,
                tree=tree,
                lines=text.splitlines(),
                digest=digest,
            )
        )
    return sources


def default_cache(paths: Sequence[Path]) -> Optional[AnalysisCache]:
    """The repo's ``.repro-cache`` for the scan roots, if locatable."""
    for path in paths:
        root = find_repo_root(path)
        if root is not None:
            return AnalysisCache.for_root(root)
    return None


#: Markdown files whose tables catalog the repo's metric series.
METRICS_DOC_NAMES: tuple[str, ...] = (
    "OBSERVABILITY.md",
    "RESILIENCE.md",
    "DAEMON.md",
)


def default_metrics_docs(paths: Sequence[Path]) -> list[Path]:
    """The repo's metric-catalog documents, located from the scan roots.

    Returns an empty list when no enclosing repo root (or no catalog
    document) can be found — rule REPRO012 then skips instead of
    guessing.
    """
    for path in paths:
        root = find_repo_root(path)
        if root is not None:
            docs = [
                root / "docs" / name
                for name in METRICS_DOC_NAMES
                if (root / "docs" / name).exists()
            ]
            if docs:
                return docs
    return []
