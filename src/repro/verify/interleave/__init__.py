"""Layer 6: await-point atomicity and task-lifecycle analysis.

The effects layer (REPRO013-017) proves daemon functions are
*individually* async-safe: nothing blocks the loop, nothing bypasses
the determinism seams. This layer proves their *interleavings* are
safe. Cooperative scheduling makes every ``await`` a preemption point
— the only places another task can run — so the analyzer partitions
each async function body into await **segments** and models, per
segment, the shared-state accesses plus a lifecycle model of every
``asyncio.create_task`` / ``ensure_future`` site (who holds the
handle, who observes the exception). Six rules consume the model
(:mod:`~repro.verify.interleave.rules`):

- **REPRO018** ``torn-invariant`` — a read-modify-write of ``self``/
  tenant/daemon state spans an await: a single statement awaiting
  between read and store, a check in one segment satisfied by a write
  in a later one, or a stale local alias written back after an await;
- **REPRO019** ``fire-and-forget-task`` — a spawned task whose handle
  is discarded or never awaited/gathered/given a done-callback
  (``cancel()``/``done()`` do not observe exceptions);
- **REPRO020** ``unawaited-coroutine`` — calling a known-async
  function and discarding the coroutine, so its body never runs;
- **REPRO021** ``blocking-while-held`` — a blocking or unbounded
  operation inside an ``asyncio.Lock`` region or the queue-consumer
  window between ``await q.get()`` and ``q.task_done()``;
- **REPRO022** ``cancellation-unsafe`` — a bare/``BaseException``/
  ``CancelledError`` handler without a re-raise (cancellation never
  lands), or an awaited ``.acquire()`` with no ``finally`` release;
- **REPRO023** ``cross-task-aliasing`` — an async method writing
  per-tenant state that a spawned consumer task (``create_task(
  self._consume())``) also writes, instead of routing through the
  tenant queue.

Run it with ``python -m repro.verify.interleave src/repro examples``
(same text/JSON/SARIF output, ``# repro: allow[RULE]`` suppressions,
and checked-in ``.interleave-baseline.json`` contract as the other
layers), or as part of the combined ``python -m repro.verify`` run.
See ``docs/VERIFICATION.md`` for the preemption-point model and the
recipe for blessing a deliberate fire-and-forget task.
"""

from repro.verify.interleave.model import FuncModel, build_models
from repro.verify.interleave.rules import RULES, analyze_interleave
from repro.verify.interleave.tasks import SpawnSite, extract_spawns

__all__ = [
    "RULES",
    "FuncModel",
    "SpawnSite",
    "analyze_interleave",
    "build_models",
    "extract_spawns",
]
