"""Await-point segmentation: the interleave analyzer's per-file model.

Cooperative scheduling gives asyncio code exactly one preemption shape:
another task can only run at an ``await``. The model therefore numbers
the *segments* of every function body — segment 0 runs before the
first await, segment 1 between the first and the second, and so on —
in execution order (an ``Assign`` evaluates its value before storing,
so ``self.x = await f()`` reads in one segment and stores in the
next). ``async for`` / ``async with`` entries count as preemption
points too.

Shared-state accesses are recorded as :class:`AttrEvent` instances
placed in their segment. Tracked receivers are ``self`` (instance
state) and parameters annotated with a class type (``tenant: Tenant``)
— module-global state is the effects layer's territory (REPRO015).
Only the access shapes the rules consume are recorded:

- ``write`` — an assignment/del through a tracked attribute, with the
  names its value reads (for the alias form of REPRO018);
- ``alias`` — ``tmp = self.x`` binding a tracked attribute to a local;
- ``guard`` — an ``if``/``while`` test reading a tracked attribute;
- ``rmw``   — a single statement that reads and rewrites the same
  attribute around an ``await`` in its value;
- ``mutate`` — an in-place container mutation (``self.xs.append``).

Writes lexically inside ``except`` handlers or ``finally`` bodies are
flagged ``in_cleanup``: compensation writes are not claim-establishing
and the torn-invariant rule skips them.

The model is file-local and purely syntactic, so it pickles into the
:class:`~repro.verify.cache.AnalysisCache` keyed on the file's content
digest; anything needing cross-file resolution (call targets, class
tables) happens at rule time against the shared project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.verify.cache import AnalysisCache, content_key
from repro.verify.effects.summary import (
    BLOCKING_CALLS,
    BUILTIN_CALLS,
    FILE_IO_ATTRS,
    MUTATING_METHODS,
)
from repro.verify.flow.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    annotation_name,
)
from repro.verify.interleave.tasks import SpawnSite, extract_spawns

#: ``await <recv>.<attr>()`` shapes with no intrinsic bound: they park
#: the awaiting task until a peer signals, which may be never.
UNBOUNDED_AWAIT_ATTRS = frozenset({"get", "join", "wait", "acquire"})

#: Receiver-name substrings that mark an asyncio lock guard.
LOCK_NAME_HINTS = ("lock", "mutex")

#: Receiver-name substrings that mark a feed/work queue.
QUEUE_NAME_HINTS = ("queue",)


@dataclass(frozen=True)
class AttrEvent:
    """One shared-state access, placed in its await segment."""

    op: str  #: ``write`` | ``alias`` | ``guard`` | ``rmw`` | ``mutate``
    receiver: str  #: the tracked name (``self``, an annotated param)
    attr: str
    segment: int
    lineno: int
    alias: str = ""  #: local name bound by an ``alias`` event
    uses: tuple[str, ...] = ()  #: names the written value reads
    in_cleanup: bool = False  #: inside an except handler / finally body


@dataclass(frozen=True)
class ExceptSite:
    """One cancellation-relevant exception handler."""

    kind: str  #: ``bare`` | ``base`` | ``cancelled``
    lineno: int
    reraises: bool


@dataclass(frozen=True)
class HeldSite:
    """A risky operation inside a lock region or consumer window."""

    region: str  #: e.g. ``async with self._lock`` or the queue window
    kind: str  #: ``blocking`` | ``unbounded-await``
    detail: str
    lineno: int


@dataclass(frozen=True)
class AcquireSite:
    """One ``await <lock>.acquire()`` and whether a finally releases it."""

    receiver: str
    lineno: int
    released_in_finally: bool


@dataclass(frozen=True)
class FuncModel:
    """Everything the interleave rules know about one function."""

    qualname: str
    lineno: int
    is_async: bool
    events: tuple[AttrEvent, ...]
    spawns: tuple[SpawnSite, ...]
    excepts: tuple[ExceptSite, ...]
    held: tuple[HeldSite, ...]
    acquires: tuple[AcquireSite, ...]
    await_count: int


def _tracked_receivers(func: FunctionInfo) -> frozenset[str]:
    """``self`` plus parameters annotated with a class-looking type."""
    names: set[str] = set()
    args = func.node.args
    ordered = args.posonlyargs + args.args + args.kwonlyargs
    for position, arg in enumerate(ordered):
        if func.cls is not None and position == 0 and arg.arg in ("self", "cls"):
            names.add(arg.arg)
            continue
        annotated = annotation_name(arg.annotation)
        if annotated is not None and annotated[:1].isupper():
            names.add(arg.arg)
    return frozenset(names)


def _iter_subtree(expr: ast.AST) -> list[ast.AST]:
    """Every node under ``expr``, nested def/lambda bodies excluded."""
    result: list[ast.AST] = []
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        result.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return result


def _contains_await(expr: ast.AST) -> bool:
    for node in _iter_subtree(expr):
        if isinstance(node, ast.Await):
            return True
    return False


def _load_names(expr: ast.AST) -> tuple[str, ...]:
    """Sorted distinct names read inside ``expr``."""
    names: set[str] = set()
    for node in _iter_subtree(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
    return tuple(sorted(names))


def _attr_reads(
    expr: ast.AST, tracked: frozenset[str]
) -> list[tuple[str, str, int]]:
    """``(receiver, attr, lineno)`` for tracked attribute reads in ``expr``."""
    reads: list[tuple[str, str, int]] = []
    for node in _iter_subtree(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in tracked
        ):
            reads.append((node.value.id, node.attr, node.lineno))
    return reads


def _base_attr(target: ast.expr, tracked: frozenset[str]) -> Optional[tuple[str, str]]:
    """``(receiver, first attr)`` of an attribute/subscript chain target."""
    node = target
    last_attr: Optional[str] = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            last_attr = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id in tracked and last_attr is not None:
        return node.id, last_attr
    return None


def _receiver_repr(expr: ast.expr) -> str:
    """Dotted rendering of a Name/Attribute chain (best effort)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _name_hints(repr_: str, hints: tuple[str, ...]) -> bool:
    tail = repr_.rsplit(".", 1)[-1].lower()
    return any(hint in tail for hint in hints)


def _blocking_call(node: ast.Call) -> Optional[str]:
    """The detail string when ``node`` is a direct blocking call."""
    func = node.func
    if isinstance(func, ast.Name):
        kinds = BUILTIN_CALLS.get(func.id)
        if kinds is not None and "blocking" in kinds:
            return f"{func.id}()"
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in FILE_IO_ATTRS:
            return f".{func.attr}()"
        value = func.value
        qualifier = (
            value.id
            if isinstance(value, ast.Name)
            else value.attr if isinstance(value, ast.Attribute) else None
        )
        if qualifier is not None and (qualifier, func.attr) in BLOCKING_CALLS:
            return f"{qualifier}.{func.attr}()"
    return None


def _handler_reraises(handler: ast.excepthandler) -> bool:
    """True when the handler body re-raises (bare or the caught name)."""
    for node in _iter_subtree_stmts(handler.body):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                isinstance(node.exc, ast.Name)
                and handler.name is not None
                and node.exc.id == handler.name
            ):
                return True
    return False


def _iter_subtree_stmts(body: Sequence[ast.stmt]) -> list[ast.AST]:
    result: list[ast.AST] = []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        result.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return result


def _except_kind(handler: ast.excepthandler) -> Optional[str]:
    """``bare``/``base``/``cancelled`` for risky handlers, else None."""
    if handler.type is None:
        return "bare"
    exprs: list[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    kinds = {annotation_name(expr) for expr in exprs}
    if "BaseException" in kinds:
        return "base"
    if "CancelledError" in kinds:
        return "cancelled"
    return None


#: Stack-entry tags for the segment walk.
_NODE = 0
_AWAIT_END = 1
_ASSIGN_END = 2
_CLEANUP_BEGIN = 3
_CLEANUP_END = 4
_REGION_END = 5

_AssignLike = Union[ast.Assign, ast.AnnAssign, ast.AugAssign]


class _Scan:
    """Mutable state of one function-body segment walk."""

    def __init__(self, tracked: frozenset[str]) -> None:
        self.tracked = tracked
        self.segment = 0
        self.cleanup_depth = 0
        self.regions: list[str] = []
        self.events: list[AttrEvent] = []
        self.excepts: list[ExceptSite] = []
        self.held: list[HeldSite] = []
        self.await_count = 0
        #: ``(receiver repr, lineno)`` of awaited ``.get()`` calls.
        self.queue_gets: list[tuple[str, int]] = []
        #: ``receiver repr -> first task_done() lineno``.
        self.task_dones: dict[str, int] = {}
        #: every risky site anywhere: ``(kind, detail, lineno)``.
        self.risky: list[tuple[str, str, int]] = []
        #: awaited ``.acquire()`` receivers and linenos.
        self.acquired: list[tuple[str, int]] = []
        #: receivers released inside some ``finally`` body.
        self.released_in_finally: set[str] = set()


def _emit_risky(scan: _Scan, kind: str, detail: str, lineno: int) -> None:
    scan.risky.append((kind, detail, lineno))
    if len(scan.regions) > 0:
        scan.held.append(HeldSite(scan.regions[-1], kind, detail, lineno))


def _enter_call(scan: _Scan, node: ast.Call) -> None:
    detail = _blocking_call(node)
    if detail is not None:
        _emit_risky(scan, "blocking", detail, node.lineno)
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "task_done":
            repr_ = _receiver_repr(func.value)
            scan.task_dones.setdefault(repr_, node.lineno)
        if func.attr in MUTATING_METHODS:
            base = _base_attr(func.value, scan.tracked)
            if base is not None:
                scan.events.append(
                    AttrEvent(
                        "mutate",
                        base[0],
                        base[1],
                        scan.segment,
                        node.lineno,
                        in_cleanup=scan.cleanup_depth > 0,
                    )
                )


def _enter_await(scan: _Scan, node: ast.Await) -> None:
    value = node.value
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
        attr = value.func.attr
        if attr in UNBOUNDED_AWAIT_ATTRS:
            repr_ = _receiver_repr(value.func.value)
            _emit_risky(
                scan, "unbounded-await", f"{repr_ or '<recv>'}.{attr}()", node.lineno
            )
            if attr == "get" and _name_hints(repr_, QUEUE_NAME_HINTS):
                scan.queue_gets.append((repr_, node.lineno))
            if attr == "acquire":
                scan.acquired.append((repr_, node.lineno))


def _enter_guard(scan: _Scan, test: ast.expr) -> None:
    for receiver, attr, lineno in _attr_reads(test, scan.tracked):
        scan.events.append(
            AttrEvent("guard", receiver, attr, scan.segment, lineno)
        )


def _assign_end(scan: _Scan, node: _AssignLike) -> None:
    """Emit write/alias/rmw events once a statement's value has run."""
    in_cleanup = scan.cleanup_depth > 0
    if isinstance(node, ast.Assign):
        targets: list[ast.expr] = list(node.targets)
    else:
        targets = [node.target]
    value = node.value
    uses = _load_names(value) if value is not None else ()
    value_reads = (
        {(r, a) for r, a, _ in _attr_reads(value, scan.tracked)}
        if value is not None
        else set()
    )
    awaited_value = value is not None and _contains_await(value)
    flat: list[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(target.elts)
        else:
            flat.append(target)
    for target in flat:
        base = _base_attr(target, scan.tracked)
        if base is None:
            continue
        receiver, attr = base
        if isinstance(node, ast.AugAssign) or (receiver, attr) in value_reads:
            if awaited_value:
                scan.events.append(
                    AttrEvent(
                        "rmw",
                        receiver,
                        attr,
                        scan.segment,
                        node.lineno,
                        in_cleanup=in_cleanup,
                    )
                )
        scan.events.append(
            AttrEvent(
                "write",
                receiver,
                attr,
                scan.segment,
                node.lineno,
                uses=uses,
                in_cleanup=in_cleanup,
            )
        )
    # The alias form: a *local* name capturing exactly ``recv.attr``.
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id in scan.tracked
    ):
        scan.events.append(
            AttrEvent(
                "alias",
                value.value.id,
                value.attr,
                scan.segment,
                node.lineno,
                alias=node.targets[0].id,
            )
        )


def _lock_region_name(node: "ast.With | ast.AsyncWith") -> Optional[str]:
    for item in node.items:
        expr = item.context_expr
        repr_ = _receiver_repr(expr)
        if repr_ and _name_hints(repr_, LOCK_NAME_HINTS):
            keyword = "async with" if isinstance(node, ast.AsyncWith) else "with"
            return f"{keyword} {repr_}"
    return None


def _push_children(
    stack: list[tuple[int, object]], children: Sequence[ast.AST]
) -> None:
    for child in reversed(list(children)):
        stack.append((_NODE, child))


def _scan_function(func: FunctionInfo) -> _Scan:
    """One execution-ordered walk of ``func``'s body."""
    scan = _Scan(_tracked_receivers(func))
    stack: list[tuple[int, object]] = []
    _push_children(stack, func.node.body)
    while stack:
        tag, payload = stack.pop()
        if tag == _AWAIT_END:
            scan.segment += 1
            scan.await_count += 1
            continue
        if tag == _ASSIGN_END:
            assert isinstance(payload, (ast.Assign, ast.AnnAssign, ast.AugAssign))
            _assign_end(scan, payload)
            continue
        if tag == _CLEANUP_BEGIN:
            scan.cleanup_depth += 1
            continue
        if tag == _CLEANUP_END:
            scan.cleanup_depth -= 1
            continue
        if tag == _REGION_END:
            scan.regions.pop()
            continue
        node = payload
        assert isinstance(node, ast.AST)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _push_children(stack, node.decorator_list)
            continue
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Await):
            stack.append((_AWAIT_END, None))
            _push_children(stack, list(ast.iter_child_nodes(node)))
            _enter_await(scan, node)
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            stack.append((_ASSIGN_END, node))
            ordered: list[ast.AST] = []
            if isinstance(node, ast.AugAssign):
                ordered = [node.value]
            else:
                if node.value is not None:
                    ordered.append(node.value)
            _push_children(stack, ordered)
            continue
        if isinstance(node, ast.Try):
            # Handlers and finally are cleanup scopes: writes there are
            # compensation, not claims (REPRO018 skips them).
            stack.append((_CLEANUP_END, None))
            _push_children(stack, node.finalbody)
            stack.append((_CLEANUP_BEGIN, None))
            _push_children(stack, node.orelse)
            stack.append((_CLEANUP_END, None))
            _push_children(stack, node.handlers)
            stack.append((_CLEANUP_BEGIN, None))
            _push_children(stack, node.body)
            for handler in node.handlers:
                kind = _except_kind(handler)
                if kind is not None:
                    scan.excepts.append(
                        ExceptSite(kind, handler.lineno, _handler_reraises(handler))
                    )
            for stmt in _iter_subtree_stmts(node.finalbody):
                if (
                    isinstance(stmt, ast.Call)
                    and isinstance(stmt.func, ast.Attribute)
                    and stmt.func.attr == "release"
                ):
                    scan.released_in_finally.add(_receiver_repr(stmt.func.value))
            continue
        if isinstance(node, (ast.If, ast.While)):
            _enter_guard(scan, node.test)
            _push_children(stack, list(ast.iter_child_nodes(node)))
            continue
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if isinstance(node, ast.AsyncWith):
                scan.segment += 1
                scan.await_count += 1
            region = _lock_region_name(node)
            if region is not None:
                stack.append((_REGION_END, None))
                _push_children(stack, node.body)
                scan.regions.append(region)
                _push_children(stack, node.items)
            else:
                _push_children(stack, list(ast.iter_child_nodes(node)))
            continue
        if isinstance(node, ast.AsyncFor):
            scan.segment += 1
            scan.await_count += 1
            _push_children(stack, list(ast.iter_child_nodes(node)))
            continue
        if isinstance(node, ast.Delete):
            for target in node.targets:
                base = _base_attr(target, scan.tracked)
                if base is not None:
                    scan.events.append(
                        AttrEvent(
                            "write",
                            base[0],
                            base[1],
                            scan.segment,
                            node.lineno,
                            in_cleanup=scan.cleanup_depth > 0,
                        )
                    )
            continue
        if isinstance(node, ast.Call):
            _enter_call(scan, node)
        _push_children(stack, list(ast.iter_child_nodes(node)))
    return scan


def _consumer_windows(scan: _Scan) -> list[HeldSite]:
    """Risky sites between ``await q.get()`` and ``q.task_done()``."""
    held: list[HeldSite] = []
    for repr_, get_line in scan.queue_gets:
        done_line = scan.task_dones.get(repr_)
        if done_line is None or done_line <= get_line:
            continue
        region = f"the {repr_} consumer window (get() .. task_done())"
        for kind, detail, lineno in scan.risky:
            if get_line < lineno < done_line:
                held.append(HeldSite(region, kind, detail, lineno))
    return held


def build_func_model(func: FunctionInfo) -> FuncModel:
    """The full interleave model of one function."""
    scan = _scan_function(func)
    held = list(scan.held) + _consumer_windows(scan)
    held.sort(key=lambda site: (site.lineno, site.kind, site.detail))
    acquires = tuple(
        AcquireSite(repr_, lineno, repr_ in scan.released_in_finally)
        for repr_, lineno in scan.acquired
    )
    return FuncModel(
        qualname=func.qualname,
        lineno=func.lineno,
        is_async=isinstance(func.node, ast.AsyncFunctionDef),
        events=tuple(scan.events),
        spawns=extract_spawns(func.node.body),
        excepts=tuple(scan.excepts),
        held=tuple(held),
        acquires=acquires,
        await_count=scan.await_count,
    )


def build_models(
    project: Project,
    cache: Optional[AnalysisCache] = None,
    source_digests: Optional[dict[str, str]] = None,
) -> dict[str, FuncModel]:
    """Per-function models for a whole project, content-cached per file.

    The model is file-local (no cross-file facts), so a cache entry is
    keyed purely on the file's content digest — warm entries stay
    correct no matter what changed elsewhere.
    """
    models: dict[str, FuncModel] = {}
    by_module: dict[str, list[FunctionInfo]] = {}
    for func in project.iter_functions():
        by_module.setdefault(func.module, []).append(func)
    for name in sorted(project.modules):
        key = ""
        if (
            cache is not None
            and source_digests is not None
            and name in source_digests
        ):
            key = content_key(source_digests[name], "interleave", name)
            cached = cache.load("interleave", key)
            if isinstance(cached, dict):
                models.update(cached)
                continue
        built = {
            func.qualname: build_func_model(func)
            for func in by_module.get(name, [])
        }
        models.update(built)
        if cache is not None and key:
            cache.store("interleave", key, built)
    return models
