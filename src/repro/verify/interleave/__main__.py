"""``python -m repro.verify.interleave`` entry point."""

import sys

from repro.verify.interleave.cli import main

if __name__ == "__main__":
    sys.exit(main())
