"""The six interleave rules (REPRO018-023) over the segment model.

Each rule consumes the per-function :class:`FuncModel` built by
:mod:`repro.verify.interleave.model` — plus, where cross-file facts are
needed (coroutine resolution, class method tables), the shared
:class:`Project` and :class:`CallGraph`. Finding messages never embed
line numbers (fingerprints hash the message); positions inside a
function are phrased as await-*segment* numbers, which survive edits
elsewhere in the file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.verify.cache import AnalysisCache
from repro.verify.config import SourceFile, find_repo_root, load_sources
from repro.verify.flow.callgraph import CallGraph, resolve_call
from repro.verify.flow.project import FunctionInfo, Project
from repro.verify.flow.report import Finding, relativize
from repro.verify.flow.suppress import is_suppressed
from repro.verify.interleave.model import FuncModel, build_models
from repro.verify.interleave.tasks import describe_binding, unsunk_spawns


@dataclass
class InterleaveContext:
    """Everything a rule needs to run."""

    project: Project
    graph: CallGraph
    models: dict[str, FuncModel]
    root: Optional[Path]

    def rel(self, path: Path) -> str:
        return relativize(path, self.root)

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.project.functions.get(qualname)

    def async_models(self) -> list[tuple[FunctionInfo, FuncModel]]:
        pairs: list[tuple[FunctionInfo, FuncModel]] = []
        for qualname in sorted(self.models):
            func = self.function(qualname)
            if func is not None and self.models[qualname].is_async:
                pairs.append((func, self.models[qualname]))
        return pairs


def _rule_torn_invariant(ctx: InterleaveContext) -> list[Finding]:
    """REPRO018: a read-then-write of the same attribute spans an await."""
    findings: list[Finding] = []
    for func, model in ctx.async_models():
        seen: set[tuple[str, str]] = set()
        for event in model.events:
            if event.op != "rmw" or (event.receiver, event.attr) in seen:
                continue
            seen.add((event.receiver, event.attr))
            findings.append(
                Finding(
                    rule="REPRO018",
                    path=ctx.rel(func.path),
                    line=event.lineno,
                    symbol=func.qualname,
                    message=(
                        f"read-modify-write of {event.receiver}.{event.attr} "
                        "spans an await inside one statement: another task "
                        "can run between the read and the store, tearing the "
                        "invariant; read into a local before the await or "
                        "guard the update with a lock"
                    ),
                )
            )
        # Stale-guard / stale-alias forms: an attribute observed in an
        # earlier segment, rewritten in a later one. Cleanup writes
        # (except/finally) are compensation, not claims — skipped.
        writes = [
            e
            for e in model.events
            if e.op == "write" and not e.in_cleanup
        ]
        for event in model.events:
            if event.op == "guard":
                for write in writes:
                    pair = (event.receiver, event.attr)
                    if (
                        (write.receiver, write.attr) == pair
                        and write.segment > event.segment
                        and pair not in seen
                    ):
                        seen.add(pair)
                        findings.append(
                            Finding(
                                rule="REPRO018",
                                path=ctx.rel(func.path),
                                line=event.lineno,
                                symbol=func.qualname,
                                message=(
                                    f"checks {event.receiver}.{event.attr} in "
                                    f"await segment {event.segment} but only "
                                    "writes it in segment "
                                    f"{write.segment}: a second task entering "
                                    "between the check and the write passes "
                                    "the same check; claim the state "
                                    "synchronously (before the first await) "
                                    "or serialize with a lock"
                                ),
                            )
                        )
                        break
            elif event.op == "alias":
                for write in writes:
                    pair = (event.receiver, event.attr)
                    if (
                        (write.receiver, write.attr) == pair
                        and write.segment > event.segment
                        and event.alias in write.uses
                        and pair not in seen
                    ):
                        seen.add(pair)
                        findings.append(
                            Finding(
                                rule="REPRO018",
                                path=ctx.rel(func.path),
                                line=event.lineno,
                                symbol=func.qualname,
                                message=(
                                    f"reads {event.receiver}.{event.attr} "
                                    f"into {event.alias!r} in await segment "
                                    f"{event.segment} and writes it back "
                                    f"from {event.alias!r} in segment "
                                    f"{write.segment}: updates landing "
                                    "between the two are lost; recompute "
                                    "after the await or hold a lock across "
                                    "the read-write span"
                                ),
                            )
                        )
                        break
    return findings


def _rule_fire_and_forget(ctx: InterleaveContext) -> list[Finding]:
    """REPRO019: a spawned task nobody awaits, gathers, or observes."""
    findings: list[Finding] = []
    for qualname in sorted(ctx.models):
        func = ctx.function(qualname)
        model = ctx.models[qualname]
        if func is None:
            continue
        for site in unsunk_spawns(model.spawns):
            fate = describe_binding(site)
            if fate is None:
                continue
            findings.append(
                Finding(
                    rule="REPRO019",
                    path=ctx.rel(func.path),
                    line=site.lineno,
                    symbol=func.qualname,
                    message=(
                        "fire-and-forget task: "
                        + fate
                        + ", so an exception in the task is silently "
                        "swallowed; await/gather it, store the handle with "
                        "an add_done_callback sink, or bless the site with "
                        "# repro: allow[REPRO019]"
                    ),
                )
            )
    return findings


def _rule_unawaited_coroutine(ctx: InterleaveContext) -> list[Finding]:
    """REPRO020: calling a known-async function and dropping the result."""
    findings: list[Finding] = []
    for qualname in sorted(ctx.models):
        func = ctx.function(qualname)
        if func is None:
            continue
        module = ctx.project.modules.get(func.module)
        if module is None:
            continue
        env = ctx.graph.envs.get(qualname, {})
        stack: list[ast.stmt] = list(func.node.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
            if not (
                isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            ):
                continue
            callee = resolve_call(ctx.project, module, env, stmt.value)
            if (
                callee is None
                or callee.is_generator
                or not isinstance(callee.node, ast.AsyncFunctionDef)
            ):
                continue
            findings.append(
                Finding(
                    rule="REPRO020",
                    path=ctx.rel(func.path),
                    line=stmt.lineno,
                    symbol=func.qualname,
                    message=(
                        f"calls async {callee.qualname} without awaiting: "
                        "the coroutine object is created and discarded, so "
                        "the body never runs; await it or hand it to "
                        "create_task/gather"
                    ),
                )
            )
    return findings


def _rule_held_across(ctx: InterleaveContext) -> list[Finding]:
    """REPRO021: blocking/unbounded work inside a critical section."""
    findings: list[Finding] = []
    for func, model in ctx.async_models():
        for site in model.held:
            if site.kind == "blocking":
                advice = (
                    "the event loop (and every other task) stalls while the "
                    "section is held; move the blocking call outside, or "
                    "run it in an executor"
                )
                what = f"blocking call {site.detail}"
            else:
                advice = (
                    "the section stays held for an unbounded time, starving "
                    "every other waiter; bound it with wait_for or restructure "
                    "so the unbounded wait happens outside"
                )
                what = f"unbounded await {site.detail}"
            findings.append(
                Finding(
                    rule="REPRO021",
                    path=ctx.rel(func.path),
                    line=site.lineno,
                    symbol=func.qualname,
                    message=f"{what} inside {site.region}: {advice}",
                )
            )
    return findings


def _rule_cancellation(ctx: InterleaveContext) -> list[Finding]:
    """REPRO022: handlers that swallow CancelledError; leaked acquires."""
    findings: list[Finding] = []
    for func, model in ctx.async_models():
        for site in model.excepts:
            if site.reraises:
                continue
            if site.kind == "bare":
                clause = "a bare except:"
            elif site.kind == "base":
                clause = "except BaseException"
            else:
                clause = "an except clause naming CancelledError"
            findings.append(
                Finding(
                    rule="REPRO022",
                    path=ctx.rel(func.path),
                    line=site.lineno,
                    symbol=func.qualname,
                    message=(
                        f"{clause} swallows asyncio.CancelledError without "
                        "re-raising: cancellation never lands and the task "
                        "outlives its lifecycle; catch Exception instead, or "
                        "re-raise the caught error"
                    ),
                )
            )
        for acquire in model.acquires:
            if acquire.released_in_finally:
                continue
            findings.append(
                Finding(
                    rule="REPRO022",
                    path=ctx.rel(func.path),
                    line=acquire.lineno,
                    symbol=func.qualname,
                    message=(
                        f"awaits {acquire.receiver or '<lock>'}.acquire() "
                        "without a matching release() in a finally: a "
                        "cancellation landing while the lock is held leaks "
                        "it forever; use `async with` or release in finally"
                    ),
                )
            )
    return findings


def _consumer_write_set(
    ctx: InterleaveContext, cls_prefix: str, entry: str
) -> tuple[frozenset[str], frozenset[str]]:
    """Attrs written by the consumer closure; and the closure itself.

    The closure is the entry method plus everything it reaches through
    ``self.`` calls within the same class.
    """
    closure: set[str] = set()
    worklist = [entry]
    while worklist:
        qualname = worklist.pop()
        if qualname in closure or not qualname.startswith(cls_prefix):
            continue
        closure.add(qualname)
        for site in ctx.graph.sites:
            if site.caller == qualname and site.via_self:
                worklist.append(site.callee)
    writes: set[str] = set()
    for qualname in closure:
        model = ctx.models.get(qualname)
        if model is None:
            continue
        for event in model.events:
            if event.op in ("write", "rmw", "mutate") and event.receiver == "self":
                writes.add(event.attr)
    return frozenset(writes), frozenset(closure)


def _rule_cross_task_alias(ctx: InterleaveContext) -> list[Finding]:
    """REPRO023: another task's state written outside the owner task."""
    findings: list[Finding] = []
    # Consumer entries: methods this class spawns as free-running tasks
    # over ``self`` (``create_task(self._consume())``).
    spawned: dict[str, set[str]] = {}
    for qualname, model in ctx.models.items():
        func = ctx.function(qualname)
        if func is None or func.cls is None:
            continue
        prefix = qualname.rsplit(".", 1)[0]
        for site in model.spawns:
            if site.target_self_method:
                spawned.setdefault(prefix, set()).add(
                    f"{prefix}.{site.target_self_method}"
                )
    for prefix in sorted(spawned):
        for entry in sorted(spawned[prefix]):
            writes, closure = _consumer_write_set(ctx, prefix + ".", entry)
            if not writes:
                continue
            for qualname in sorted(ctx.models):
                if not qualname.startswith(prefix + ".") or qualname in closure:
                    continue
                func = ctx.function(qualname)
                model = ctx.models[qualname]
                if func is None or not model.is_async:
                    continue
                flagged: set[str] = set()
                for event in model.events:
                    if (
                        event.op not in ("write", "rmw", "mutate")
                        or event.receiver != "self"
                        or event.attr not in writes
                        or event.attr in flagged
                    ):
                        continue
                    flagged.add(event.attr)
                    entry_name = entry.rsplit(".", 1)[-1]
                    findings.append(
                        Finding(
                            rule="REPRO023",
                            path=ctx.rel(func.path),
                            line=event.lineno,
                            symbol=func.qualname,
                            message=(
                                f"writes self.{event.attr}, which the "
                                f"spawned consumer task ({entry_name}) also "
                                "writes: two tasks interleave on the same "
                                "per-tenant state; route the change through "
                                "the task's queue instead of mutating "
                                "directly"
                            ),
                        )
                    )
    return findings


@dataclass(frozen=True)
class RuleSpec:
    """One interleave rule: its code, summary, and entry point."""

    code: str
    name: str
    summary: str
    run: Callable[[InterleaveContext], list[Finding]]


RULES: dict[str, RuleSpec] = {
    spec.code: spec
    for spec in (
        RuleSpec(
            "REPRO018",
            "torn-invariant",
            "read-modify-write of shared state spans an await point",
            _rule_torn_invariant,
        ),
        RuleSpec(
            "REPRO019",
            "fire-and-forget-task",
            "spawned task has no retained reference or exception sink",
            _rule_fire_and_forget,
        ),
        RuleSpec(
            "REPRO020",
            "unawaited-coroutine",
            "result of calling an async function is discarded unawaited",
            _rule_unawaited_coroutine,
        ),
        RuleSpec(
            "REPRO021",
            "blocking-while-held",
            "blocking or unbounded operation inside a critical section",
            _rule_held_across,
        ),
        RuleSpec(
            "REPRO022",
            "cancellation-unsafe",
            "CancelledError swallowed or lifecycle guard not released",
            _rule_cancellation,
        ),
        RuleSpec(
            "REPRO023",
            "cross-task-aliasing",
            "state owned by a spawned task is written from another task",
            _rule_cross_task_alias,
        ),
    )
}


def analyze_interleave(
    paths: Sequence[Path],
    select: Optional[frozenset[str]] = None,
    sources: Optional[Sequence[SourceFile]] = None,
    cache: Optional[AnalysisCache] = None,
    project: Optional[Project] = None,
    graph: Optional[CallGraph] = None,
) -> list[Finding]:
    """Run the interleave rules over ``paths`` and return findings.

    ``sources``/``project``/``graph`` let the umbrella CLI share one
    parse pass and call graph across all analyzer layers; when absent
    they are built here. The per-file segment models go through the
    content-hash ``cache``; cross-file resolution always runs fresh.
    """
    if sources is None and project is None:
        sources = load_sources(paths, cache)
    if project is None:
        project = Project.load(paths, sources=sources, cache=cache)
    if graph is None:
        graph = CallGraph.build(project)
    root = find_repo_root(paths[0]) if len(paths) > 0 else None
    digests = (
        {source.name: source.digest for source in sources}
        if sources is not None
        else None
    )
    models = build_models(project, cache=cache, source_digests=digests)
    ctx = InterleaveContext(project=project, graph=graph, models=models, root=root)
    selected = select if select is not None else frozenset(RULES)
    findings: list[Finding] = []
    for code in sorted(selected):
        spec = RULES.get(code)
        if spec is not None:
            findings.extend(spec.run(ctx))
    by_path: dict[str, list[str]] = {
        relativize(module.path, root): module.source_lines
        for module in project.modules.values()
    }
    kept = [
        finding
        for finding in findings
        if finding.path not in by_path
        or not is_suppressed(by_path[finding.path], finding.line, finding.rule)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept
