"""Command-line front end: ``python -m repro.verify.interleave``.

Same contract as the flow and effects CLIs: exit **0** clean (or
baselined / suppressed), **1** new findings, **2** usage error. The
checked-in baseline lives at ``<repo root>/.interleave-baseline.json``
and is kept empty by policy — fix findings, don't bury them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.verify.config import default_cache, find_repo_root
from repro.verify.flow.report import (
    Finding,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)
from repro.verify.interleave.rules import RULES, analyze_interleave

#: File name of the checked-in baseline at the repo root.
BASELINE_NAME = ".interleave-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.interleave",
        description=(
            "SMALTA interleaving analysis (rules REPRO018-REPRO023): "
            "await-point atomicity, task lifecycle, critical-section, "
            "cancellation-safety, and cross-task aliasing checks for "
            "the aggregation daemon's asyncio code."
        ),
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the report here"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <repo root>/{BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as tolerated and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _default_baseline(paths: Sequence[Path]) -> Optional[Path]:
    for path in paths:
        root = find_repo_root(path)
        if root is not None:
            candidate = root / BASELINE_NAME
            if candidate.exists():
                return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            spec = RULES[code]
            print(f"{code}  {spec.name}: {spec.summary}")
        return 0
    if len(args.paths) == 0:
        parser.error("at least one path is required")
    for path in args.paths:
        if not path.exists():
            parser.error(f"no such path: {path}")
    select: Optional[frozenset[str]] = None
    if args.select is not None:
        select = frozenset(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = select - set(RULES)
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    findings = analyze_interleave(
        args.paths, select=select, cache=default_cache(args.paths)
    )
    baseline_path = args.baseline or _default_baseline(args.paths)
    if args.write_baseline:
        target = args.baseline or baseline_path
        if target is None:
            root = find_repo_root(args.paths[0]) or Path.cwd()
            target = root / BASELINE_NAME
        write_baseline(target, findings)
        print(f"wrote {len(findings)} fingerprint(s) to {target}")
        return 0
    fresh: list[Finding] = findings
    if baseline_path is not None:
        known = load_baseline(baseline_path)
        fresh = [f for f in findings if f.fingerprint() not in known]
    if args.format == "text":
        rendered = render_text(fresh)
    elif args.format == "json":
        rendered = render_json(fresh)
    else:
        rendered = render_sarif(
            fresh, {code: spec.summary for code, spec in RULES.items()}
        )
    if args.output is not None:
        args.output.write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return 1 if len(fresh) > 0 else 0
