"""The task-lifecycle model: spawn sites and their exception sinks.

A call to ``asyncio.create_task`` / ``asyncio.ensure_future`` starts a
task whose exceptions go nowhere unless *something* retains the handle
and eventually observes it. This module classifies every spawn site in
a function body: where the returned handle is bound (discarded, a local
name, an attribute, an argument), and — for locally bound handles —
whether the function ever gives the task a sink (``await``, ``gather``/
``wait``/``shield``, ``add_done_callback``, ``result``/``exception``,
or escaping via ``return``/``yield``). Calling ``.cancel()`` or
polling ``.done()`` is *not* a sink: a cancelled-but-never-awaited
task still swallows any exception it raised before the cancel landed.

``TaskGroup``-style spawns (``tg.create_task(...)`` inside ``async
with asyncio.TaskGroup() as tg``) are structured concurrency — the
group awaits its children — and never register as spawn sites here.

Everything is a plain frozen dataclass so the per-file model pickles
into the :class:`~repro.verify.cache.AnalysisCache`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional, Sequence

#: Call / attribute names that start a free-running task.
SPAWN_NAMES = frozenset({"create_task", "ensure_future"})

#: Awaitable-combinator names: a handle passed into one is sunk.
COMBINATOR_NAMES = frozenset(
    {"gather", "wait", "wait_for", "shield", "as_completed"}
)

#: Task-handle methods that observe the result (exception sink).
SINK_TASK_ATTRS = frozenset({"add_done_callback", "result", "exception"})

#: Task-handle methods that do NOT observe the result.
NEUTRAL_TASK_ATTRS = frozenset(
    {
        "cancel",
        "cancelled",
        "cancelling",
        "uncancel",
        "done",
        "get_name",
        "set_name",
        "get_coro",
    }
)


@dataclass(frozen=True)
class SpawnSite:
    """One ``create_task``/``ensure_future`` call and its fate."""

    lineno: int
    #: How the returned handle is bound: ``discarded`` (bare expression
    #: statement), ``named`` (local name, possibly via a comprehension),
    #: ``attribute`` (stored on an object), or ``sunk`` (awaited inline,
    #: passed onward, returned, ...).
    binding: str
    name: str = ""  #: the bound local name when ``binding == "named"``
    #: ``m`` when the spawned coroutine is ``self.m(...)`` — the
    #: cross-task aliasing rule's task-owner marker.
    target_self_method: str = ""
    #: Final verdict: True when an exception sink (or escape) exists.
    sunk: bool = False


def _parent_map(body: Sequence[ast.stmt]) -> dict[ast.AST, ast.AST]:
    """Child -> parent over the whole body subtree (iterative)."""
    parents: dict[ast.AST, ast.AST] = {}
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            stack.append(child)
    return parents


def _group_names(body: Sequence[ast.stmt]) -> frozenset[str]:
    """Names bound by ``async with ...TaskGroup() as NAME`` items."""
    names: set[str] = set()
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                tail = ""
                if isinstance(expr, ast.Call):
                    func = expr.func
                    if isinstance(func, ast.Attribute):
                        tail = func.attr
                    elif isinstance(func, ast.Name):
                        tail = func.id
                if tail.endswith("TaskGroup") and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
        stack.extend(ast.iter_child_nodes(node))
    return frozenset(names)


def _is_spawn_call(call: ast.Call, groups: frozenset[str]) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in SPAWN_NAMES
    if isinstance(func, ast.Attribute) and func.attr in SPAWN_NAMES:
        # A TaskGroup spawn is structured: the group is the sink.
        if isinstance(func.value, ast.Name) and func.value.id in groups:
            return False
        return True
    return False


def _self_method(call: ast.Call) -> str:
    """``m`` when the first spawn argument is a ``self.m(...)`` call."""
    if len(call.args) == 0:
        return ""
    coro = call.args[0]
    if (
        isinstance(coro, ast.Call)
        and isinstance(coro.func, ast.Attribute)
        and isinstance(coro.func.value, ast.Name)
        and coro.func.value.id == "self"
    ):
        return coro.func.attr
    return ""


def _classify_binding(
    call: ast.Call, parents: dict[ast.AST, ast.AST]
) -> tuple[str, str]:
    """``(binding, name)`` for a spawn call, walking up the parents."""
    node: ast.AST = call
    while True:
        parent = parents.get(node)
        if parent is None:
            return "sunk", ""  # unreachable shape: stay silent
        if isinstance(parent, ast.Await):
            return "sunk", ""
        if isinstance(parent, ast.Expr):
            return "discarded", ""
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return "sunk", ""
        if isinstance(parent, ast.Call) and node is not parent.func:
            return "sunk", ""  # argument to gather/append/...: escaped
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                list(parent.targets)
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
            ):
                return "attribute", ""
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                return "named", targets[0].id
            return "sunk", ""
        if isinstance(
            parent,
            (
                ast.ListComp,
                ast.SetComp,
                ast.GeneratorExp,
                ast.List,
                ast.Tuple,
                ast.Set,
                ast.Starred,
                ast.IfExp,
                ast.BoolOp,
                ast.comprehension,
            ),
        ):
            node = parent  # the container's fate decides
            continue
        return "sunk", ""


def _loop_aliases(
    body: Sequence[ast.stmt], names: frozenset[str]
) -> frozenset[str]:
    """Loop variables iterating over a tracked container of handles."""
    aliases: set[str] = set(names)
    changed = True
    while changed:
        changed = False
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if (
                isinstance(node, (ast.For, ast.AsyncFor))
                and isinstance(node.iter, ast.Name)
                and node.iter.id in aliases
                and isinstance(node.target, ast.Name)
                and node.target.id not in aliases
            ):
                aliases.add(node.target.id)
                changed = True
            stack.extend(ast.iter_child_nodes(node))
    return frozenset(aliases - names)


def _has_sink(
    body: Sequence[ast.stmt],
    parents: dict[ast.AST, ast.AST],
    names: frozenset[str],
) -> bool:
    """True when any appearance of ``names`` observes the task."""
    aliases = _loop_aliases(body, names)
    watched = names | aliases
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        stack.extend(ast.iter_child_nodes(node))
        if not (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in watched
        ):
            continue
        parent = parents.get(node)
        if parent is None:
            continue
        if isinstance(parent, ast.Await):
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, ast.Call) and node is not parent.func:
            return True  # argument to gather/wait/len/...: escaped
        if isinstance(parent, ast.Starred):
            return True  # *handles into a combinator call
        if isinstance(parent, ast.Attribute) and parent.value is node:
            if parent.attr in NEUTRAL_TASK_ATTRS:
                continue
            return True  # .add_done_callback/.result/unknown: observed
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            continue  # iteration only; the loop variable is tracked
        if isinstance(
            parent,
            (ast.Compare, ast.BoolOp, ast.UnaryOp, ast.If, ast.While, ast.IfExp),
        ):
            continue  # truthiness / identity tests observe nothing
        if isinstance(parent, ast.Subscript) and parent.value is node:
            continue
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            return True  # aliased away: assume the alias is handled
        return True  # unknown shape: err toward silence
    return False


def extract_spawns(body: Sequence[ast.stmt]) -> tuple[SpawnSite, ...]:
    """Every free-running spawn site in ``body``, with its sink verdict."""
    parents = _parent_map(body)
    groups = _group_names(body)
    raw: list[tuple[ast.Call, str, str]] = []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        stack.extend(ast.iter_child_nodes(node))
        if isinstance(node, ast.Call) and _is_spawn_call(node, groups):
            binding, name = _classify_binding(node, parents)
            raw.append((node, binding, name))
    sink_cache: dict[str, bool] = {}
    sites: list[SpawnSite] = []
    for call, binding, name in raw:
        if binding == "named":
            if name not in sink_cache:
                sink_cache[name] = _has_sink(body, parents, frozenset({name}))
            sunk = sink_cache[name]
        else:
            sunk = binding != "discarded"
        sites.append(
            SpawnSite(
                lineno=call.lineno,
                binding=binding,
                name=name,
                target_self_method=_self_method(call),
                sunk=sunk,
            )
        )
    sites.sort(key=lambda s: s.lineno)
    return tuple(sites)


def spawn_sites_for(
    node: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> tuple[SpawnSite, ...]:
    """Convenience wrapper: the spawn sites of one function body."""
    return extract_spawns(node.body)


def unsunk_spawns(sites: Sequence[SpawnSite]) -> list[SpawnSite]:
    """The fire-and-forget subset (rule REPRO019's subjects)."""
    return [site for site in sites if not site.sunk]


def describe_binding(site: SpawnSite) -> Optional[str]:
    """Human phrasing of an unsunk site's fate, None when sunk."""
    if site.sunk:
        return None
    if site.binding == "discarded":
        return "its handle is discarded on the spot"
    return (
        f"its handle {site.name!r} is never awaited, gathered, or given "
        "a done-callback (cancel()/done() do not observe exceptions)"
    )
