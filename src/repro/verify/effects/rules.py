"""The concurrency-readiness rule set, REPRO013 through REPRO017.

Same contract as the flow rules (:mod:`repro.verify.flow.rules`): each
rule is a plain function from :class:`EffectContext` to findings, and
on ambiguity it stays silent. Findings reuse the flow layer's
:class:`~repro.verify.flow.report.Finding` (and with it the SARIF/
baseline/fingerprint machinery).

How to add a rule: write ``def _rule_<thing>(ctx: EffectContext) ->
list[Finding]``, give it a ``REPRO0xx`` code in :data:`RULES`, add
positive/negative/suppressed fixtures under
``tests/verify/effects_fixtures`` and a catalog entry in
``docs/VERIFICATION.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.verify.cache import AnalysisCache
from repro.verify.config import (
    SourceFile,
    find_repo_root,
    load_sources,
    package_parts,
)
from repro.verify.effects.infer import EffectIndex, infer_effects, is_async
from repro.verify.effects.summary import EffectSite
from repro.verify.flow.callgraph import CallGraph, walk_scope
from repro.verify.flow.project import FunctionInfo, Project, annotation_name
from repro.verify.flow.report import Finding, relativize
from repro.verify.flow.suppress import is_suppressed

#: Packages (under ``repro/``) that *are* the determinism seams — raw
#: clock/RNG use inside them is the implementation of the seam itself.
BLESSED_SEAM_PACKAGES = frozenset({"faults"})

#: Classes whose public methods are (current or future) shard entry
#: points: concurrent shards will call into them independently.
SHARD_ENTRY_CLASSES = frozenset({"SmaltaManager"})

#: Decorator name that marks a function as an additional entry point.
SHARD_ENTRY_DECORATOR = "shard_entry"

#: Functions that must stay pure for per-process sharded snapshots.
SNAPSHOT_ROOT_NAMES = frozenset({"snapshot", "snapshot_now", "ortc_from_trie"})

#: Attribute calls that hand work to a pickling executor seam.
EXECUTOR_SUBMIT_ATTRS = frozenset(
    {"submit", "apply_async", "map_async", "starmap", "starmap_async"}
)

#: Effect kinds that break snapshot purity (REPRO017).
IMPURE_KINDS = ("global-write", "io", "rng", "clock")


@dataclass
class EffectContext:
    """Everything an effect rule may consult."""

    project: Project
    graph: CallGraph
    index: EffectIndex
    root: Optional[Path]

    def rel(self, path: Path) -> str:
        return relativize(path, self.root)


def _in_blessed_seam(path: Path) -> bool:
    parts = package_parts(path)
    return bool(parts) and parts[0] in BLESSED_SEAM_PACKAGES


# -- REPRO013: blocking call reachable from async -----------------------


def _rule_blocking_in_async(ctx: EffectContext) -> list[Finding]:
    findings: list[Finding] = []
    for qualname in sorted(ctx.project.functions):
        if not is_async(ctx.project, qualname):
            continue
        func = ctx.project.functions[qualname]
        summary = ctx.index.summaries.get(qualname, {})
        for (kind, detail), (chain, site) in sorted(summary.items()):
            if kind != "blocking":
                continue
            route = ctx.index.chain_text(qualname, chain)
            anchor = func.lineno if len(chain) > 0 else site.lineno
            findings.append(
                Finding(
                    "REPRO013",
                    ctx.rel(func.path),
                    anchor,
                    qualname,
                    f"async {qualname} reaches blocking {detail} {route}; "
                    "a blocked event loop stalls every tenant — await an "
                    "async equivalent or offload to an executor",
                )
            )
    return findings


# -- REPRO014: determinism-seam bypass ----------------------------------

_SEAM_HINTS = {
    "clock": (
        "inject the clock instead (a `clock: Callable[[], float]` "
        "parameter defaulting to the time function keeps replays "
        "deterministic)"
    ),
    "rng": (
        "thread a seeded `rng: random.Random` parameter through "
        "(the repo's blessed randomness seam) instead of the "
        "process-global RNG"
    ),
}


def _rule_seam_bypass(ctx: EffectContext) -> list[Finding]:
    findings: list[Finding] = []
    scopes: list[tuple[str, Path, tuple[EffectSite, ...]]] = []
    for name in sorted(ctx.index.module_direct):
        module = ctx.project.modules[name]
        scopes.append((name, module.path, ctx.index.module_direct[name]))
    for qualname in sorted(ctx.index.direct):
        func = ctx.project.functions.get(qualname)
        if func is None:
            continue
        scopes.append((qualname, func.path, ctx.index.direct[qualname]))
    for symbol, path, sites in scopes:
        if _in_blessed_seam(path):
            continue
        for site in sites:
            hint = _SEAM_HINTS.get(site.kind)
            if hint is None:
                continue
            noun = "reads the real clock" if site.kind == "clock" else (
                "draws unseeded randomness"
            )
            findings.append(
                Finding(
                    "REPRO014",
                    ctx.rel(path),
                    site.lineno,
                    symbol,
                    f"{site.detail} {noun}, bypassing the determinism "
                    f"seam; {hint}",
                )
            )
    return findings


# -- REPRO015: shard-escaping module state ------------------------------


def _shard_entry_points(ctx: EffectContext) -> list[FunctionInfo]:
    entries: list[FunctionInfo] = []
    for cls_qual in sorted(ctx.project.classes):
        info = ctx.project.classes[cls_qual]
        if info.name not in SHARD_ENTRY_CLASSES:
            continue
        for method_name in sorted(info.methods):
            if not method_name.startswith("_"):
                entries.append(info.methods[method_name])
    for qualname in sorted(ctx.project.functions):
        func = ctx.project.functions[qualname]
        if SHARD_ENTRY_DECORATOR in func.decorators:
            entries.append(func)
    return entries


def _rule_shard_escape(ctx: EffectContext) -> list[Finding]:
    entries = _shard_entry_points(ctx)
    #: global qualname -> entry qualname -> (chain, site)
    writers: dict[str, dict[str, tuple[tuple[str, ...], EffectSite]]] = {}
    for entry in entries:
        summary = ctx.index.summaries.get(entry.qualname, {})
        for (kind, detail), witness in summary.items():
            if kind == "global-write":
                writers.setdefault(detail, {})[entry.qualname] = witness
    findings: list[Finding] = []
    for detail in sorted(writers):
        by_entry = writers[detail]
        if len(by_entry) < 2:
            continue  # single-entry state still belongs to one shard
        module_name, bare = detail.rsplit(".", 1)
        binding = ctx.index.bindings.get(module_name, {}).get(bare)
        module = ctx.project.modules.get(module_name)
        if binding is None or module is None:
            continue
        sample = ", ".join(
            f"{entry} ({ctx.index.chain_text(entry, chain)})"
            for entry, (chain, _site) in sorted(by_entry.items())[:3]
        )
        findings.append(
            Finding(
                "REPRO015",
                ctx.rel(module.path),
                binding.lineno,
                detail,
                f"module-level mutable {detail} is written from "
                f"{len(by_entry)} shard entry points ({sample}); shared "
                "state escapes the shard boundary — move it onto the "
                "manager/shard object or guard it behind an explicit "
                "cross-shard service",
            )
        )
    return findings


# -- REPRO016: un-picklable captures at executor seams ------------------


def _local_function_names(body: Sequence[ast.stmt]) -> frozenset[str]:
    """Names bound to nested defs or lambdas inside this scope."""
    names: set[str] = set()
    for node in walk_scope(body):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Lambda)
        ):
            names.add(node.targets[0].id)
    return frozenset(names)


def _receiver_hint(expr: ast.expr) -> str:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _submitted_callable(call: ast.Call) -> Optional[ast.expr]:
    """The callable argument of an executor-seam call, if present."""
    if len(call.args) > 0:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("func", "fn", "target"):
            return keyword.value
    return None


def _rule_unpicklable_capture(ctx: EffectContext) -> list[Finding]:
    findings: list[Finding] = []
    for qualname in sorted(ctx.project.functions):
        func = ctx.project.functions[qualname]
        local_funcs = _local_function_names(func.node.body)
        for node in walk_scope(func.node.body):
            if not isinstance(node, ast.Call):
                continue
            seam: Optional[str] = None
            target: Optional[ast.expr] = None
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                hint = _receiver_hint(node.func.value)
                pool_like = any(
                    word in hint for word in ("pool", "executor", "proc")
                )
                if "thread" in hint:
                    continue  # thread seams never pickle the callable
                if attr in EXECUTOR_SUBMIT_ATTRS or (attr == "map" and pool_like):
                    if attr in ("submit", "map") and not pool_like:
                        continue
                    seam = f"{hint or '<receiver>'}.{attr}()"
                    target = _submitted_callable(node)
            if seam is None:
                cls_name = annotation_name(node.func)
                if cls_name == "Process":
                    seam = "Process(target=...)"
                    for keyword in node.keywords:
                        if keyword.arg == "target":
                            target = keyword.value
            if seam is None or target is None:
                continue
            reason: Optional[str] = None
            if isinstance(target, ast.Lambda):
                reason = "a lambda"
            elif isinstance(target, ast.Name) and target.id in local_funcs:
                reason = f"locally-defined function {target.id!r}"
            if reason is None:
                continue
            findings.append(
                Finding(
                    "REPRO016",
                    ctx.rel(func.path),
                    node.lineno,
                    qualname,
                    f"{reason} is handed to {seam}; process-pool seams "
                    "pickle their callable, and locals/lambdas cannot be "
                    "pickled — pass a module-level function instead",
                )
            )
    return findings


# -- REPRO017: impurity reachable from the snapshot path ----------------


def _snapshot_roots(ctx: EffectContext) -> list[FunctionInfo]:
    roots: list[FunctionInfo] = []
    for qualname in sorted(ctx.project.functions):
        func = ctx.project.functions[qualname]
        if func.name not in SNAPSHOT_ROOT_NAMES:
            continue
        # Inside the repo namespace only the core algorithms are roots;
        # fixture/test trees (no ``repro.`` prefix) qualify by name.
        if func.module.startswith("repro.") and not func.module.startswith(
            "repro.core"
        ):
            continue
        roots.append(func)
    return roots


def _rule_impure_snapshot(ctx: EffectContext) -> list[Finding]:
    findings: list[Finding] = []
    for root_func in _snapshot_roots(ctx):
        summary = ctx.index.summaries.get(root_func.qualname, {})
        for (kind, detail), (chain, site) in sorted(summary.items()):
            if kind not in IMPURE_KINDS:
                continue
            route = ctx.index.chain_text(root_func.qualname, chain)
            anchor = root_func.lineno if len(chain) > 0 else site.lineno
            findings.append(
                Finding(
                    "REPRO017",
                    ctx.rel(root_func.path),
                    anchor,
                    root_func.qualname,
                    f"snapshot-path function {root_func.qualname} reaches "
                    f"impure {detail} ({kind}) {route}; sharded "
                    "per-process snapshots require the snapshot path to "
                    "be pure (writes confined to the manager's own state)",
                )
            )
    return findings


# -- registry ------------------------------------------------------------


@dataclass(frozen=True)
class RuleSpec:
    """One rule's identity and entry point."""

    code: str
    name: str
    summary: str
    run: Callable[[EffectContext], list[Finding]]


RULES: dict[str, RuleSpec] = {
    "REPRO013": RuleSpec(
        "REPRO013",
        "blocking-in-async",
        "blocking call (sleep/file IO/subprocess) reachable from an "
        "async def; it would stall the event loop",
        _rule_blocking_in_async,
    ),
    "REPRO014": RuleSpec(
        "REPRO014",
        "seam-bypass",
        "raw clock read or unseeded RNG outside the repro.faults seams "
        "and the seeded rng-parameter idiom (REPRO003 is its "
        "wall-clock-only fast-path alias)",
        _rule_seam_bypass,
    ),
    "REPRO015": RuleSpec(
        "REPRO015",
        "shard-escape",
        "module-level mutable state written from more than one shard "
        "entry point",
        _rule_shard_escape,
    ),
    "REPRO016": RuleSpec(
        "REPRO016",
        "unpicklable-capture",
        "lambda or local closure handed to a pickling executor seam",
        _rule_unpicklable_capture,
    ),
    "REPRO017": RuleSpec(
        "REPRO017",
        "impure-snapshot-path",
        "global write, IO, or nondeterminism reachable from the "
        "snapshot path, which sharding requires to be pure",
        _rule_impure_snapshot,
    ),
}


def analyze_effects(
    paths: Sequence[Path],
    select: Optional[frozenset[str]] = None,
    sources: Optional[Sequence[SourceFile]] = None,
    cache: Optional[AnalysisCache] = None,
    project: Optional[Project] = None,
    graph: Optional[CallGraph] = None,
) -> list[Finding]:
    """Run the (selected) effect rules over ``paths``.

    Inline ``# repro: allow[...]`` suppressions are subtracted here;
    baseline subtraction is the CLI's job. A combined run can hand in
    the already-built ``sources``/``project``/``graph`` so nothing is
    parsed or resolved twice.
    """
    if sources is None and project is None:
        sources = load_sources(paths, cache)
    if project is None:
        project = Project.load(paths, sources=sources, cache=cache)
    if graph is None:
        graph = CallGraph.build(project)
    digests = (
        {source.name: source.digest for source in sources}
        if sources is not None
        else None
    )
    index = infer_effects(project, graph, cache=cache, source_digests=digests)
    root = find_repo_root(paths[0]) if len(paths) > 0 else None
    ctx = EffectContext(project, graph, index, root)
    findings: list[Finding] = []
    for code in sorted(RULES):
        if select is not None and code not in select:
            continue
        findings.extend(RULES[code].run(ctx))
    by_path: dict[str, list[str]] = {
        relativize(module.path, root): module.source_lines
        for module in project.modules.values()
    }
    kept = [
        finding
        for finding in findings
        if finding.path not in by_path
        or not is_suppressed(by_path[finding.path], finding.line, finding.rule)
    ]
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept
