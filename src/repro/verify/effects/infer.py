"""Bottom-up interprocedural effect inference.

:func:`infer_effects` extracts the direct effect sites of every
function (and module top level), then propagates them over the call
graph: a function's *summary* is the union of its own sites and its
resolved callees' summaries. Propagation runs over the strongly
connected components of the graph in reverse topological order —
iterative Tarjan emits SCCs callee-first, which is exactly the
bottom-up order a summary-based analysis needs — and every member of a
cycle shares the whole cycle's effects (a recursive helper that sleeps
makes every function in its SCC blocking).

Each summary entry remembers *one* witness call chain to the origin
site, so rule messages can say not just "snapshot reaches IO" but
through which helpers. Chains are shortest-first best-effort, for
humans, not proofs.

Per-file direct extraction is cached content-hashed (see
:mod:`repro.verify.cache`): the key folds in the module name and a
digest of the project-wide global-binding table, because a site like
``REGISTRY.append`` in module A depends on module B still binding
``REGISTRY`` at top level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.verify.cache import AnalysisCache, content_key
from repro.verify.effects.summary import (
    EffectSite,
    GlobalBinding,
    direct_effects,
    module_bindings,
)
from repro.verify.flow.callgraph import CallGraph
from repro.verify.flow.project import Project

#: A summary maps ``(kind, detail)`` to one witness: the call chain
#: (callee qualnames, origin last; empty for a direct site) and the
#: origin site itself.
Summary = dict[tuple[str, str], tuple[tuple[str, ...], EffectSite]]


@dataclass
class EffectIndex:
    """Everything the effect rules consume."""

    project: Project
    graph: CallGraph
    #: Direct sites per function qualname.
    direct: dict[str, tuple[EffectSite, ...]] = field(default_factory=dict)
    #: Direct sites of each module's top-level scope.
    module_direct: dict[str, tuple[EffectSite, ...]] = field(default_factory=dict)
    #: Transitive summaries per function qualname.
    summaries: dict[str, Summary] = field(default_factory=dict)
    #: Module-level data bindings: module name -> bare name -> binding.
    bindings: dict[str, dict[str, GlobalBinding]] = field(default_factory=dict)

    def chain_text(self, qualname: str, chain: tuple[str, ...]) -> str:
        """Human rendering of a witness path from ``qualname``."""
        if len(chain) == 0:
            return "directly"
        return "via " + " -> ".join(chain)


def _tarjan_sccs(nodes: list[str], edges: dict[str, set[str]]) -> list[list[str]]:
    """SCCs of ``(nodes, edges)`` in reverse topological order.

    Iterative (the analyzer obeys the repo's own no-recursion rules);
    emission order means every SCC appears after all SCCs it calls
    into, i.e. callees first — the bottom-up propagation order.
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    scc_stack: list[str] = []
    counter = 0
    components: list[list[str]] = []
    succs = {node: sorted(edges.get(node, ())) for node in nodes}
    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = low[node] = counter
                counter += 1
                scc_stack.append(node)
                on_stack.add(node)
            descended = False
            children = succs.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    descended = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def infer_effects(
    project: Project,
    graph: CallGraph,
    cache: Optional[AnalysisCache] = None,
    source_digests: Optional[dict[str, str]] = None,
) -> EffectIndex:
    """Build the full effect index for a loaded project.

    ``source_digests`` maps module name -> content digest (available
    when the caller went through :func:`repro.verify.config.
    load_sources`); without it, per-file caching is skipped and only
    in-memory extraction runs.
    """
    idx = EffectIndex(project, graph)
    # -- pass 1: module-level bindings (pure per-file) -------------------
    for name, module in project.modules.items():
        idx.bindings[name] = module_bindings(module)
    bindings_digest = content_key(
        ";".join(
            f"{b.qualname}:{int(b.mutable)}"
            for mod in sorted(idx.bindings)
            for b in idx.bindings[mod].values()
        )
    )
    # -- pass 2: direct sites per scope, content-cached ------------------
    for name, module in project.modules.items():
        key = ""
        cached_ok = False
        if cache is not None and source_digests is not None and name in source_digests:
            key = content_key(source_digests[name], "effects", name, bindings_digest)
            cached = cache.load("effects", key)
            if isinstance(cached, dict):
                functions = cached.get("functions")
                top = cached.get("module")
                if isinstance(functions, dict) and isinstance(top, tuple):
                    for qualname, sites in functions.items():
                        idx.direct[qualname] = sites
                    idx.module_direct[name] = top
                    cached_ok = True
        if cached_ok:
            continue
        per_function: dict[str, tuple[EffectSite, ...]] = {}
        for func in project.iter_functions():
            if func.module != name:
                continue
            sites = direct_effects(
                module, func.node.body, func.node.args, idx.bindings
            )
            per_function[func.qualname] = sites
            idx.direct[func.qualname] = sites
        top_sites = direct_effects(module, module.tree.body, None, idx.bindings)
        idx.module_direct[name] = top_sites
        if cache is not None and key:
            cache.store(
                "effects", key, {"functions": per_function, "module": top_sites}
            )
    # -- pass 3: bottom-up propagation over SCCs -------------------------
    nodes = sorted(project.functions)
    edges = {
        name: {c for c in graph.edges.get(name, set()) if c in project.functions}
        for name in nodes
    }
    for component in _tarjan_sccs(nodes, edges):
        members = set(component)
        # Seed every member with its own direct sites...
        for member in component:
            summary: Summary = {}
            for site in idx.direct.get(member, ()):
                summary.setdefault((site.kind, site.detail), ((), site))
            idx.summaries[member] = summary
        # ...fold in external callee summaries (already complete)...
        for member in component:
            summary = idx.summaries[member]
            for callee in sorted(edges.get(member, ())):
                if callee in members:
                    continue
                for entry_key, (chain, site) in idx.summaries[callee].items():
                    candidate = ((callee,) + chain, site)
                    existing = summary.get(entry_key)
                    if existing is None or len(candidate[0]) < len(existing[0]):
                        summary[entry_key] = candidate
        # ...then share everything across the cycle to a fixpoint.
        if len(component) > 1 or component[0] in edges.get(component[0], set()):
            changed = True
            while changed:
                changed = False
                for member in component:
                    summary = idx.summaries[member]
                    for callee in sorted(edges.get(member, ())):
                        if callee not in members:
                            continue
                        for entry_key, (chain, site) in list(
                            idx.summaries[callee].items()
                        ):
                            if entry_key not in summary:
                                summary[entry_key] = ((callee,) + chain, site)
                                changed = True
    return idx


def is_async(project: Project, qualname: str) -> bool:
    """True when ``qualname`` is an ``async def`` project function."""
    func = project.functions.get(qualname)
    return func is not None and isinstance(func.node, ast.AsyncFunctionDef)
