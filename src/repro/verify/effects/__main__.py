"""``python -m repro.verify.effects`` entry point."""

import sys

from repro.verify.effects.cli import main

if __name__ == "__main__":
    sys.exit(main())
