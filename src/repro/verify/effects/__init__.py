"""Layer 5: effect/purity inference and concurrency-readiness rules.

The roadmap's next tentpoles — the asyncio aggregation daemon and the
process-pool sharded ORTC — introduce concurrency into a codebase whose
correctness story assumes single-threaded determinism. This package
proves, *before* that code lands, which functions are pure, which state
escapes a shard, and which call paths would block an event loop or
break the injected-clock / seeded-RNG determinism seams.

It builds on the flow engine (:mod:`repro.verify.flow`): the same
project symbol table and call graph, extended with a bottom-up
interprocedural **effect inference** (:mod:`~repro.verify.effects.infer`)
that summarizes, per function and propagated over the SCCs of the call
graph, every blocking call, raw clock read, unseeded RNG use, IO
operation, and module-global write. Five rules consume the summaries
(:mod:`~repro.verify.effects.rules`):

- **REPRO013** ``blocking-in-async`` — a blocking call (``time.sleep``,
  file IO, subprocess, sockets) reachable from an ``async def``;
- **REPRO014** ``seam-bypass`` — a direct clock read or unseeded RNG
  use outside ``repro.faults`` and the blessed ``rng: random.Random``
  parameter idiom (REPRO003 in the lint layer is its wall-clock-only
  fast-path alias);
- **REPRO015** ``shard-escape`` — module-level mutable state written
  from code reachable by more than one shard entry point
  (``SmaltaManager`` public methods, ``@shard_entry`` functions);
- **REPRO016** ``unpicklable-capture`` — a lambda or locally-defined
  closure handed to a process-pool seam (``submit``/``apply_async``/
  ``Process(target=...)``);
- **REPRO017** ``impure-snapshot-path`` — a global write, IO, or
  nondeterminism source reachable from ``snapshot``/``snapshot_now``/
  ``ortc_from_trie``, which sharded per-process snapshots require to
  be pure.

Run it with ``python -m repro.verify.effects src/repro examples`` (same
text/JSON/SARIF output, ``# repro: allow[RULE]`` suppressions, and
checked-in ``.effects-baseline.json`` contract as the flow CLI), or as
part of the combined ``python -m repro.verify`` run. See
``docs/VERIFICATION.md`` for the effect lattice and the recipe for
blessing a new determinism seam.
"""

from repro.verify.effects.infer import EffectIndex, infer_effects
from repro.verify.effects.rules import RULES, analyze_effects
from repro.verify.effects.summary import EffectSite

__all__ = [
    "RULES",
    "EffectIndex",
    "EffectSite",
    "analyze_effects",
    "infer_effects",
]
