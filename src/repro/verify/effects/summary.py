"""The effect model: sites, kinds, and per-scope direct extraction.

An :class:`EffectSite` is one concrete operation at one source line
that the concurrency rules care about. The lattice is a powerset over
``(kind, detail)`` pairs — joins are unions, so the interprocedural
propagation in :mod:`~repro.verify.effects.infer` is a plain monotone
fixpoint over the call-graph SCC condensation.

Effect kinds:

- ``blocking`` — suspends the calling thread: ``time.sleep``, file
  reads/writes, subprocess spawns, socket/url fetches, ``input``.
  These stall an event loop when reached from ``async def`` code.
- ``clock`` — reads real time (``time.time``, ``time.perf_counter``,
  ``datetime.now`` …). Replayable code takes an injected clock
  callable instead; a *reference* used as a parameter default
  (``clock: Clock = time.perf_counter``) is the blessed seam and is
  not a call, so it never registers.
- ``rng`` — draws from the process-global ``random`` module or builds
  an unseeded ``random.Random()``. The blessed idiom threads a seeded
  ``rng: random.Random`` parameter; calls through such a parameter are
  attribute calls on a local name and never match.
- ``io`` — touches the outside world (files, stdout, processes,
  network). A superset marker used by the snapshot-purity rule.
- ``global-write`` — rebinds or mutates a module-level name, directly
  (``global X; X = ...``, ``REGISTRY[k] = v``, ``CACHE.append(...)``)
  or through an imported module-level binding.

Extraction is deliberately *name-based and conservative*, matching the
flow rules' design pressure: a receiver that is locally bound shadows
the module match, unknown shapes produce no sites, and the rules err
toward silence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.verify.flow.callgraph import walk_scope
from repro.verify.flow.project import ModuleInfo

#: Effect kinds, in severity/report order.
KINDS: tuple[str, ...] = ("blocking", "clock", "rng", "io", "global-write")

#: ``(qualifier, attribute)`` pairs that read a real clock when called.
CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: ``(qualifier, attribute)`` pairs that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        ("time", "sleep"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
        ("os", "system"),
        ("os", "popen"),
        ("socket", "create_connection"),
        ("request", "urlopen"),  # urllib.request.urlopen
        ("requests", "get"),
        ("requests", "post"),
        ("requests", "put"),
        ("requests", "delete"),
        ("requests", "head"),
        ("requests", "request"),
    }
)

#: Attribute names that perform file IO on any receiver (``Path`` and
#: path-like APIs); both ``io`` and ``blocking``.
FILE_IO_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Bare built-in calls: name -> kinds emitted.
BUILTIN_CALLS: dict[str, tuple[str, ...]] = {
    "open": ("io", "blocking"),
    "input": ("blocking",),
    "print": ("io",),
}

#: Method names whose *call* mutates the receiver container in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "setdefault",
        "sort",
    }
)

#: Constructor names whose result is a mutable container.
MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


@dataclass(frozen=True)
class EffectSite:
    """One concrete effect occurrence inside one scope."""

    kind: str  #: one of :data:`KINDS`
    detail: str  #: e.g. ``time.sleep`` or ``repro.x.REGISTRY``
    lineno: int

    def describe(self) -> str:
        return f"{self.detail} ({self.kind})"


@dataclass(frozen=True)
class GlobalBinding:
    """One module-level name binding (the shard-escape rule's subject)."""

    module: str
    name: str
    lineno: int
    mutable: bool

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


def module_bindings(module: ModuleInfo) -> dict[str, GlobalBinding]:
    """Module-level data bindings of one module, by bare name.

    Class and function statements are not data bindings; only
    assignments count, and the first one wins (re-binds at module level
    keep the original line as the anchor).
    """
    bindings: dict[str, GlobalBinding] = {}
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id not in bindings:
                bindings[target.id] = GlobalBinding(
                    module.name,
                    target.id,
                    stmt.lineno,
                    _is_mutable_value(value),
                )
    return bindings


def _is_mutable_value(value: Optional[ast.expr]) -> bool:
    """True when the bound value is a mutable container, syntactically."""
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in MUTABLE_FACTORIES
    return False


def _scope_locals(
    body: Sequence[ast.stmt], args: Optional[ast.arguments]
) -> tuple[frozenset[str], frozenset[str]]:
    """``(local names, global-declared names)`` of one scope.

    Locals shadow module-level matches: a parameter called ``random``
    or a local ``time = ...`` must suppress the module tables. Names
    declared ``global`` are excluded from the locals so assignments to
    them register as global writes.
    """
    declared_global: set[str] = set()
    local: set[str] = set()
    if args is not None:
        for arg in (
            args.posonlyargs
            + args.args
            + args.kwonlyargs
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        ):
            local.add(arg.arg)
    for node in walk_scope(body):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            local.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    local.add(alias.asname or alias.name.split(".")[0])
    return frozenset(local - declared_global), frozenset(declared_global)


def _qualifier_name(func: ast.expr) -> Optional[tuple[str, str]]:
    """``(qualifier, attribute)`` of an attribute call target, if simple."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id, func.attr
    if isinstance(value, ast.Attribute):
        return value.attr, func.attr
    return None


def _global_target(
    name: str,
    module: ModuleInfo,
    bindings: dict[str, dict[str, GlobalBinding]],
) -> Optional[GlobalBinding]:
    """The module-level binding a bare name refers to, if any.

    Looks in this module first, then through ``from x import NAME``
    imports into other project modules' top-level bindings.
    """
    own = bindings.get(module.name, {})
    if name in own:
        return own[name]
    imported = module.imports.get(name)
    if imported is not None and "." in imported:
        target_module, target_name = imported.rsplit(".", 1)
        other = bindings.get(target_module)
        if other is not None and target_name in other:
            return other[target_name]
    return None


def direct_effects(
    module: ModuleInfo,
    body: Sequence[ast.stmt],
    args: Optional[ast.arguments],
    bindings: dict[str, dict[str, GlobalBinding]],
) -> tuple[EffectSite, ...]:
    """Every direct effect site in one scope (function or module body).

    Nested defs/lambdas are scopes of their own (``walk_scope``); their
    effects are attributed to them, not to the enclosing scope.
    """
    locals_, declared_global = _scope_locals(body, args)
    sites: list[EffectSite] = []

    def emit(kind: str, detail: str, lineno: int) -> None:
        sites.append(EffectSite(kind, detail, lineno))

    for node in walk_scope(body):
        if isinstance(node, ast.Call):
            _call_effects(node, module, locals_, bindings, emit)
            continue
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            _target_effects(
                target, module, locals_, declared_global, bindings, emit
            )
    return tuple(sites)


def _call_effects(
    node: ast.Call,
    module: ModuleInfo,
    locals_: frozenset[str],
    bindings: dict[str, dict[str, GlobalBinding]],
    emit,
) -> None:
    func = node.func
    if isinstance(func, ast.Name):
        kinds = BUILTIN_CALLS.get(func.id)
        if kinds is not None and func.id not in locals_:
            for kind in kinds:
                emit(kind, f"{func.id}()", node.lineno)
        return
    pair = _qualifier_name(func)
    if pair is None:
        return
    qualifier, attr = pair
    shadowed = qualifier in locals_
    if not shadowed:
        if pair in CLOCK_CALLS:
            emit("clock", f"{qualifier}.{attr}()", node.lineno)
        if pair in BLOCKING_CALLS:
            emit("blocking", f"{qualifier}.{attr}()", node.lineno)
            if qualifier != "time":  # subprocess/sockets/urls also do IO
                emit("io", f"{qualifier}.{attr}()", node.lineno)
        if qualifier == "random" and isinstance(func.value, ast.Name):
            if attr == "Random":
                if len(node.args) == 0 and len(node.keywords) == 0:
                    emit("rng", "random.Random()", node.lineno)
            elif attr == "SystemRandom":
                emit("rng", "random.SystemRandom()", node.lineno)
            else:
                emit("rng", f"random.{attr}()", node.lineno)
    if attr in FILE_IO_ATTRS:
        emit("io", f".{attr}()", node.lineno)
        emit("blocking", f".{attr}()", node.lineno)
    # Mutation of a module-level container through a method call.
    if attr in MUTATING_METHODS and isinstance(func.value, ast.Name):
        name = func.value.id
        if name not in locals_:
            binding = _global_target(name, module, bindings)
            if binding is not None and binding.mutable:
                emit("global-write", binding.qualname, node.lineno)


def _target_effects(
    target: ast.expr,
    module: ModuleInfo,
    locals_: frozenset[str],
    declared_global: frozenset[str],
    bindings: dict[str, dict[str, GlobalBinding]],
    emit,
) -> None:
    """Global-write sites from one assignment/del target."""
    if isinstance(target, ast.Name):
        if target.id in declared_global:
            own = bindings.get(module.name, {})
            binding = own.get(target.id)
            qual = (
                binding.qualname
                if binding is not None
                else f"{module.name}.{target.id}"
            )
            emit("global-write", qual, target.lineno)
        return
    # Subscript/attribute stores: find the base name.
    base = target
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        base = base.value
    if not isinstance(base, ast.Name) or base.id in locals_:
        return
    binding = _global_target(base.id, module, bindings)
    if binding is not None and binding.mutable:
        emit("global-write", binding.qualname, target.lineno)
