"""A decade of RouteViews growth vs SMALTA's headroom (paper Section 1/4).

The paper's headline operational claim: halving FIB memory buys "roughly
four years of routing table growth at current rates". This study
synthesizes the 2001–2010 RouteViews tables, aggregates each, and finds
for every year Y the later year whose *unaggregated* FIB is as large as
Y's *aggregated* one — the lifetime extension.

Run:  python examples/routeviews_study.py           (~1 min at default scale)
      REPRO_SCALE=0.03 python examples/routeviews_study.py   (quick look)
"""

import random

from repro.analysis.metrics import fib_metrics
from repro.analysis.reporting import format_table
from repro.core.ortc import ortc
from repro.workloads.routeviews import ROUTEVIEWS_TABLE_SIZES, build_routeviews_scenario

IGP_NEXTHOPS = 8


def main() -> None:
    years = sorted(ROUTEVIEWS_TABLE_SIZES)
    rows = []
    memory = {}
    aggregated_memory = {}
    for year in years:
        rng = random.Random(year)
        scenario = build_routeviews_scenario(year, rng)
        table, _ = scenario.with_igp_nexthops(IGP_NEXTHOPS)
        original = fib_metrics(table)
        aggregated = fib_metrics(ortc(table.items(), 32))
        memory[year] = original.memory_bytes
        aggregated_memory[year] = aggregated.memory_bytes
        rows.append(
            (
                year,
                original.entries,
                aggregated.entries,
                f"{100 * aggregated.entries / original.entries:.1f}%",
                original.memory_bytes,
                aggregated.memory_bytes,
                f"{100 * aggregated.memory_bytes / original.memory_bytes:.1f}%",
            )
        )
        print(f"  {year}: done ({original.entries:,} prefixes)")

    print()
    print(
        format_table(
            ["year", "#(OT)", "#(AT)", "#%", "M(OT) B", "M(AT) B", "M%"],
            rows,
            title=f"RouteViews {years[0]}-{years[-1]}, {IGP_NEXTHOPS} IGP nexthops",
        )
    )

    # Lifetime extension: how many years of growth does aggregation absorb?
    print("\nLifetime extension (paper: roughly four years):")
    for year in years:
        headroom = memory[year]
        extension = 0
        for later in years:
            if later > year and aggregated_memory[later] <= headroom:
                extension = later - year
        if extension:
            print(
                f"  a FIB sized for {year}'s unaggregated table still fits "
                f"the aggregated table of {year + extension} "
                f"(+{extension} years)"
            )


if __name__ == "__main__":
    main()
