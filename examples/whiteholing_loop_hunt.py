"""Why SMALTA refuses to whitehole: a forwarding-loop hunt (Sections 6/7).

Builds the textbook two-border-router network, aggregates both FIBs with
every scheme, and traces actual packets — printing a concrete looping
path for the whiteholing schemes and the same packet's fate under SMALTA.

Run:  python examples/whiteholing_loop_hunt.py
"""

import random

from repro.baselines import level2, level4
from repro.core.ortc import ortc
from repro.net.nexthop import DROP
from repro.netsim import (
    Outcome,
    aggregate_network,
    build_two_border_scenario,
    loop_census,
    trace_path,
)
from repro.netsim.forwarding import probe_addresses


def dotted(address: int) -> str:
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def main() -> None:
    rng = random.Random(11)
    network = build_two_border_scenario(rng, prefix_count=2_000)
    print(
        "Topology: R1 <-> R2; interleaved address blocks; R2 carries a "
        "default route via R1 (its transit).\n"
    )

    schemes = [
        ("SMALTA (ORTC)", ortc),
        ("Level-2", level2),
        ("Level-4 whiteholing", level4),
    ]
    looping_address = None
    for name, scheme in schemes:
        aggregated = aggregate_network(network, scheme)
        census = loop_census(aggregated)
        entries = sum(len(aggregated.router(r).table) for r in aggregated.names())
        print(
            f"{name:>22}: {entries:>6,} entries   "
            f"delivered={census[Outcome.DELIVERED]:,} "
            f"dropped={census[Outcome.DROPPED]:,} "
            f"LOOPS={census[Outcome.LOOP]:,}"
        )
        if census[Outcome.LOOP] and looping_address is None:
            for address in probe_addresses(network, aggregated):
                if trace_path(aggregated, "R1", address).outcome is Outcome.LOOP:
                    looping_address = (address, aggregated)
                    break

    if looping_address is None:
        print("\nno looping packet found (try another seed)")
        return

    address, whiteholed = looping_address
    print(f"\nFollowing a packet to {dotted(address)} (unrouted in reality):")
    exact_result = trace_path(network, "R1", address)
    print(
        f"  exact FIBs:      {' -> '.join(exact_result.path)}  "
        f"[{exact_result.outcome.value}]"
    )
    loop_result = trace_path(whiteholed, "R1", address)
    path = " -> ".join(loop_result.path)
    print(f"  whiteholed FIBs: {path}  [{loop_result.outcome.value}!]")
    r1 = whiteholed.router("R1").lookup(address)
    r2 = whiteholed.router("R2").lookup(address)
    print(
        f"\n  R1 whiteholed the space toward {r1}; R2's view sends it to "
        f"{r2} — the packet ping-pongs until TTL death."
    )
    original = network.router("R1").lookup(address)
    print(
        f"  (the exact FIB said: {original if original != DROP else 'no route — drop'})"
    )


if __name__ == "__main__":
    main()
