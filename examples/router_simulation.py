"""The Quagga-analogue router (paper Section 5), end to end.

A simulated router with three BGP peers: routes flow through best-path
selection into zebra, where the SMALTA layer intercepts the kernel
downloads. The CLI toggles aggregation at runtime, exactly like the
paper's Quagga port. The run is self-checking: the invariant auditor
(see docs/VERIFICATION.md) re-verifies the SMALTA state every 1000
updates and after every snapshot, raising immediately on corruption.

Run:  python examples/router_simulation.py
"""

import random

from repro.bgp.attributes import PathAttributes
from repro.core.policy import PeriodicUpdateCountPolicy
from repro.net.nexthop import NexthopRegistry
from repro.router.cli import RouterCli
from repro.router.pipeline import RouterPipeline
from repro.verify import AuditConfig
from repro.workloads.synthetic_table import generate_table


def main() -> None:
    rng = random.Random(5)
    registry = NexthopRegistry()
    peers = registry.create_many(3, prefix="peer-")
    igp = registry.create_many(2, prefix="igp-")

    pipeline = RouterPipeline(
        igp_nexthops=igp,
        policy=PeriodicUpdateCountPolicy(5_000),
        audit=AuditConfig.every(1000),
    )
    for peer in peers:
        pipeline.add_peer(peer)
    cli = RouterCli(pipeline.zebra)

    # Each peer advertises its own view of a shared base table.
    base = generate_table(6_000, peers, rng)
    print(f"feeding {len(base):,} prefixes from {len(peers)} peers ...")
    for prefix, origin_peer in base.items():
        for peer in peers:
            if peer == origin_peer:
                attributes = PathAttributes(as_path=(65_001,))
            elif rng.random() < 0.7:
                attributes = PathAttributes(as_path=(65_001, 65_002, 65_003))
            else:
                continue  # this peer never heard the route
            pipeline.announce(peer, prefix, attributes)

    # End-of-RIB from every peer triggers the initial snapshot(OT).
    for peer in peers:
        pipeline.peer_end_of_rib(peer)

    print()
    print(cli.execute("show smalta status"))
    print(cli.execute("show fib summary"))
    print(f"kernel forwards exactly like the RIB: {pipeline.kernel_matches_rib()}")

    # Some live routing activity: a peer session flaps.
    print("\n--- dropping peer-0 (session loss) ---")
    pipeline.drop_peer(peers[0])
    print(cli.execute("show fib summary"))
    print(f"kernel still correct: {pipeline.kernel_matches_rib()}")

    # Runtime de-aggregation and re-aggregation through the CLI.
    print("\n--- CLI: smalta disable / enable ---")
    print(cli.execute("smalta disable"))
    print(cli.execute("show fib summary"))
    print(cli.execute("smalta enable"))
    print(cli.execute("show fib summary"))
    print(cli.execute("smalta snapshot"))

    stats = pipeline.stats
    manager = pipeline.zebra.manager
    print(
        f"\nprocessed {stats.updates_processed:,} FIB updates, "
        f"{stats.fib_downloads:,} downloads, {stats.snapshots} snapshots "
        f"(mean stall {stats.mean_delay_s * 1000:.1f} ms)"
    )
    print(f"inline audits run: {manager.audits_run} (all clean)")


if __name__ == "__main__":
    main()
