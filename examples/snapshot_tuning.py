"""Operator guidance: choosing a snapshot policy (paper Section 4.3).

"A router vendor needs to decide how many consecutive FIB downloads are
acceptable, and then run the snapshot often enough to stay under this
number." This example replays one churn trace under several policies
and reports the trade-off: FIB size drift vs per-snapshot burst vs total
downloads, including the growth-triggered policy the paper suggests
("after the aggregated tree has grown by more than a certain amount").

Run:  python examples/snapshot_tuning.py
"""

import random

from repro.analysis.reporting import format_table
from repro.core.downloads import DownloadLog
from repro.core.manager import SmaltaManager
from repro.core.policy import (
    GrowthSnapshotPolicy,
    ManualSnapshotPolicy,
    PeriodicUpdateCountPolicy,
)
from repro.net.nexthop import NexthopRegistry
from repro.net.update import RouteUpdate
from repro.workloads.synthetic_table import generate_table
from repro.workloads.synthetic_updates import generate_update_trace

TABLE_SIZE = 12_000
TRACE_LENGTH = 10_000


def main() -> None:
    rng = random.Random(42)
    registry = NexthopRegistry()
    nexthops = registry.create_many(8)
    table = generate_table(TABLE_SIZE, nexthops, rng)
    trace = generate_update_trace(table, TRACE_LENGTH, nexthops, rng)

    policies = [
        ("never (manual only)", ManualSnapshotPolicy()),
        ("every 500 updates", PeriodicUpdateCountPolicy(500)),
        ("every 2000 updates", PeriodicUpdateCountPolicy(2_000)),
        ("AT grown by 5%", GrowthSnapshotPolicy(0.05)),
        ("AT grown by 15%", GrowthSnapshotPolicy(0.15)),
    ]

    rows = []
    for label, policy in policies:
        log = DownloadLog(keep_entries=False)
        manager = SmaltaManager(policy=policy, download_log=log)
        for prefix, nexthop in table.items():
            manager.apply(RouteUpdate.announce(prefix, nexthop))
        initial_burst = len(manager.end_of_rib())
        initial_at = manager.at_size
        manager.apply_many(trace)
        bursts = log.snapshot_bursts[1:]  # exclude the initial download
        rows.append(
            (
                label,
                manager.at_size,
                f"{100 * manager.at_size / max(1, initial_at) - 100:+.1f}%",
                len(bursts),
                max(bursts) if bursts else 0,
                log.update_downloads,
                log.total - initial_burst,
            )
        )
        print(f"  {label}: done")

    print()
    print(
        format_table(
            [
                "policy",
                "final #(AT)",
                "AT drift",
                "snapshots",
                "max burst",
                "update downloads",
                "total downloads",
            ],
            rows,
            title=(
                f"Snapshot policy trade-offs "
                f"({TABLE_SIZE:,}-prefix table, {TRACE_LENGTH:,} updates)"
            ),
        )
    )
    print(
        "\nReading: tighter policies keep the FIB smaller (less drift) at "
        "the cost of more, larger snapshot bursts — Figure 10's trade-off."
    )


def advisor_demo() -> None:
    """The automated version: ask the advisor for a spacing that keeps
    bursts under a budget (Section 4.3's vendor guidance, mechanized)."""
    from repro.core.advisor import advise

    rng = random.Random(43)
    registry = NexthopRegistry()
    nexthops = registry.create_many(8)
    table = generate_table(TABLE_SIZE, nexthops, rng)
    trace = generate_update_trace(table, TRACE_LENGTH, nexthops, rng)
    for budget in (100, 500, 5_000):
        advice = advise(table, trace, burst_budget=budget)
        print(f"  burst budget {budget:>5,}: {advice}")


if __name__ == "__main__":
    main()
    print("\nAdvisor (pick the spacing for a download-burst budget):")
    advisor_demo()
