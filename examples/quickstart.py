"""Quickstart — SMALTA on the paper's own Figure 2 example, then live updates.

Run:  python examples/quickstart.py
"""

from repro import NexthopRegistry, Prefix, RouteUpdate, SmaltaManager
from repro.core.equivalence import semantically_equivalent


def show(title: str, table: dict) -> None:
    print(f"{title}:")
    for prefix, nexthop in sorted(table.items()):
        print(f"  {prefix} -> {nexthop}")


def main() -> None:
    registry = NexthopRegistry()
    a = registry.create("A")
    b = registry.create("B")
    q = registry.create("Q")

    # --- Figure 2: three entries aggregate to two --------------------------
    manager = SmaltaManager()
    for prefix_text, nexthop in [
        ("128.16.0.0/15", b),
        ("128.18.0.0/15", a),
        ("128.16.0.0/16", a),
    ]:
        manager.apply(RouteUpdate.announce(Prefix.from_string(prefix_text), nexthop))

    downloads = manager.end_of_rib()  # the initial snapshot(OT)
    show("Original table (OT)", manager.state.ot_table())
    show("Aggregated table (AT)", manager.fib_table())
    print(f"initial snapshot produced {len(downloads)} FIB downloads\n")

    # --- Figures 3/4: the incremental insert that breaks naive schemes -----
    target = Prefix.from_string("128.18.0.0/16")
    print(f"Insert({target}, Q) — the Figure 3 update:")
    downloads = manager.apply(RouteUpdate.announce(target, q))
    for download in downloads:
        print(f"  FIB download: {download.kind.value} {download.prefix}"
              + (f" -> {download.nexthop}" if download.nexthop else ""))
    show("Aggregated table after the insert", manager.fib_table())

    equivalent = semantically_equivalent(
        manager.state.ot_table(), manager.fib_table()
    )
    print(f"\nsemantically equivalent to the original: {equivalent}")
    print(f"entries: OT={manager.ot_size}, AT={manager.at_size}")

    # --- withdraw and re-optimize ------------------------------------------
    withdraw_downloads = manager.apply(RouteUpdate.withdraw(target))
    burst = manager.snapshot_now()
    print(
        f"\nwithdraw emitted {len(withdraw_downloads)} download(s); "
        f"re-optimization burst: {len(burst)} download(s)"
    )
    show("Aggregated table after withdraw + snapshot", manager.fib_table())
    print(f"total FIB downloads so far: {manager.log.total}")


if __name__ == "__main__":
    main()
